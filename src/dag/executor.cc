#include "dag/executor.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace sky::dag {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Shared scheduling state for one DAG execution.
struct RunState {
  const TaskGraph* graph;
  ThreadPool* pool;
  Clock::time_point start;
  std::vector<std::atomic<int>> pending;
  std::vector<double> finish_times;
  std::atomic<size_t> remaining;
  std::mutex mu;
  std::condition_variable done_cv;

  explicit RunState(const TaskGraph& g, ThreadPool* p)
      : graph(&g),
        pool(p),
        start(Clock::now()),
        pending(g.NumNodes()),
        finish_times(g.NumNodes(), 0.0),
        remaining(g.NumNodes()) {}
};

void RunNode(RunState* st, size_t idx);

void ScheduleNode(RunState* st, size_t idx) {
  st->pool->Submit([st, idx] { RunNode(st, idx); });
}

void RunNode(RunState* st, size_t idx) {
  const TaskNode& node = st->graph->node(idx);
  if (node.work) node.work();
  st->finish_times[idx] = SecondsSince(st->start);
  for (size_t child : st->graph->Children(idx)) {
    if (st->pending[child].fetch_sub(1) == 1) {
      ScheduleNode(st, child);
    }
  }
  if (st->remaining.fetch_sub(1) == 1) {
    std::unique_lock<std::mutex> lock(st->mu);
    st->done_cv.notify_all();
  }
}

}  // namespace

Result<ExecutionReport> ExecuteDag(const TaskGraph& graph, ThreadPool* pool) {
  if (pool == nullptr) return Status::InvalidArgument("null thread pool");
  SKY_RETURN_NOT_OK(graph.Validate());
  if (graph.NumNodes() == 0) {
    return ExecutionReport{};
  }

  RunState st(graph, pool);
  for (size_t i = 0; i < graph.NumNodes(); ++i) {
    st.pending[i].store(static_cast<int>(graph.Parents(i).size()));
  }
  for (size_t i = 0; i < graph.NumNodes(); ++i) {
    if (graph.Parents(i).empty()) ScheduleNode(&st, i);
  }
  {
    std::unique_lock<std::mutex> lock(st.mu);
    st.done_cv.wait(lock, [&st] { return st.remaining.load() == 0; });
  }

  ExecutionReport report;
  report.finish_times_s = st.finish_times;
  report.makespan_s = 0.0;
  for (double t : st.finish_times) {
    report.makespan_s = std::max(report.makespan_s, t);
  }
  return report;
}

void BusyWorkMillis(double millis) {
  // Spin on a deterministic arithmetic kernel; checking the clock at a
  // coarse granularity keeps timing overhead negligible.
  auto start = Clock::now();
  double target = millis / 1000.0;
  volatile double sink = 1.0;
  for (;;) {
    for (int i = 0; i < 2000; ++i) {
      sink = sink * 1.0000001 + 0.0000001;
    }
    if (SecondsSince(start) >= target) break;
  }
  (void)sink;
}

}  // namespace sky::dag
