#ifndef SKYSCRAPER_DAG_THREAD_POOL_H_
#define SKYSCRAPER_DAG_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sky::dag {

/// Fixed-size worker pool. Plays the role Ray actors play in the paper's
/// Python implementation: UDF invocations are mapped onto a bounded set of
/// workers, one logical core each.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Enqueues a task and returns a future for its result. Exceptions thrown
  /// by the task surface on future::get().
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> SubmitWithFuture(F&& fn) {
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Reusable cyclic barrier for a fixed set of participants — the single
/// synchronization primitive of the StreamSet scheduler's plan boundaries.
/// All participants block in ArriveAndWait until the last one arrives; that
/// last arriver (the "leader" of the generation) runs `on_complete` while
/// every other participant is still parked — a guaranteed single-threaded
/// window — and then releases them all. The barrier then resets for the
/// next generation, so one instance serves every boundary of a run.
///
/// The barrier's internal mutex orders each generation's completion callback
/// against the next: writes made inside `on_complete` (or by any participant
/// before arriving) happen-before every participant's return from
/// ArriveAndWait, even when a different thread leads the next generation.
class Barrier {
 public:
  /// `num_participants` must be >= 1 and exactly that many threads must call
  /// ArriveAndWait per generation (a participant set fixed for the barrier's
  /// lifetime — there is no arrive_and_drop; idle participants must keep
  /// arriving).
  explicit Barrier(size_t num_participants);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all participants have arrived. The last arriver runs
  /// `on_complete` (when non-null) before anyone is released. If
  /// `on_complete` throws, the barrier still releases the other
  /// participants (no deadlock) and the exception propagates to the leader.
  void ArriveAndWait(const std::function<void()>& on_complete = nullptr);

  size_t num_participants() const { return participants_; }

 private:
  const size_t participants_;
  size_t arrived_ = 0;
  uint64_t generation_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

/// Runs fn(i) for every i in [0, n) and blocks until all calls completed.
/// The calling thread participates in the work, so nested ParallelFor calls
/// sharing one pool cannot deadlock (an outer task waiting on an inner loop
/// drains that loop itself if no worker is free). Indices are claimed from a
/// shared counter, so callers that need determinism must write results into
/// per-index slots — which also makes the output independent of the thread
/// count. If any call throws, the first exception is rethrown after all
/// indices have been attempted. A null `pool` runs the loop serially.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Chunked variant: runs fn(chunk_index, begin, end) over [0, n) split into
/// fixed `chunk_size` ranges. The chunk geometry depends only on n and
/// chunk_size — never on the thread count — so per-chunk RNG forks stay
/// deterministic while amortizing the fork cost over the whole range.
void ParallelForChunked(ThreadPool* pool, size_t n, size_t chunk_size,
                        const std::function<void(size_t, size_t, size_t)>& fn);

/// The pool size RunOfflinePhase and the benches default to: the hardware
/// concurrency, at least 1.
size_t DefaultThreadCount();

}  // namespace sky::dag

#endif  // SKYSCRAPER_DAG_THREAD_POOL_H_
