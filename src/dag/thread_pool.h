#ifndef SKYSCRAPER_DAG_THREAD_POOL_H_
#define SKYSCRAPER_DAG_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sky::dag {

/// Fixed-size worker pool. Plays the role Ray actors play in the paper's
/// Python implementation: UDF invocations are mapped onto a bounded set of
/// workers, one logical core each.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace sky::dag

#endif  // SKYSCRAPER_DAG_THREAD_POOL_H_
