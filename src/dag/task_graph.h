#ifndef SKYSCRAPER_DAG_TASK_GRAPH_H_
#define SKYSCRAPER_DAG_TASK_GRAPH_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/result.h"

namespace sky::dag {

/// Where a task executes. Each UDF has an on-premise and a cloud version
/// (Appendix F); a Placement assigns one location per task graph node.
enum class Loc { kOnPrem, kCloud };

/// One UDF invocation in the processing DAG of a knob configuration.
struct TaskNode {
  std::string name;
  /// Measured runtime of the on-premise version on a single core, seconds.
  double onprem_runtime_s = 0.0;
  /// Measured round-trip time of the cloud version (upload + cloud compute +
  /// download), seconds; the simulator treats it as the cloud busy time.
  double cloud_runtime_s = 0.0;
  /// Average payload sizes used by the bandwidth-occupancy model.
  double input_bytes = 0.0;
  double output_bytes = 0.0;
  /// Cloud credits charged when this task runs in the cloud (USD).
  double cloud_cost_usd = 0.0;
  /// Interchangeability group (>= 0): nodes of the same group are identical
  /// siblings (e.g. the per-frame-batch invocations of one UDF, like the
  /// "60 YOLO tasks" of Appendix M.2). The placement search exploits this
  /// symmetry: only the *count* of cloud-placed nodes per group matters.
  /// -1 means the node is unique.
  int group = -1;
  /// Optional callable for the local executor (synthetic compute kernel).
  std::function<void()> work;
};

/// Directed acyclic graph of TaskNodes. Edges mean "source output feeds
/// target input". Construction is cheap; Validate() checks acyclicity.
class TaskGraph {
 public:
  /// Adds a node and returns its index.
  size_t AddNode(TaskNode node);

  /// Adds a dependency edge from `from` to `to` (from must finish first).
  Status AddEdge(size_t from, size_t to);

  size_t NumNodes() const { return nodes_.size(); }
  const TaskNode& node(size_t i) const { return nodes_[i]; }
  TaskNode& node(size_t i) { return nodes_[i]; }
  const std::vector<size_t>& Parents(size_t i) const { return parents_[i]; }
  const std::vector<size_t>& Children(size_t i) const { return children_[i]; }

  /// Topological order; fails if the graph has a cycle.
  Result<std::vector<size_t>> TopoOrder() const;

  Status Validate() const;

  /// Sum of on-premise runtimes over all nodes (total work if executed
  /// sequentially on one core).
  double TotalOnPremWork() const;

 private:
  std::vector<TaskNode> nodes_;
  std::vector<std::vector<size_t>> parents_;
  std::vector<std::vector<size_t>> children_;
};

/// A location per node of a TaskGraph.
struct Placement {
  std::vector<Loc> node_loc;

  static Placement AllOnPrem(size_t num_nodes) {
    return Placement{std::vector<Loc>(num_nodes, Loc::kOnPrem)};
  }
  static Placement AllCloud(size_t num_nodes) {
    return Placement{std::vector<Loc>(num_nodes, Loc::kCloud)};
  }

  size_t NumCloudNodes() const;
  /// Total cloud credits this placement charges for one execution of `g`.
  double CloudCost(const TaskGraph& g) const;
};

}  // namespace sky::dag

#endif  // SKYSCRAPER_DAG_TASK_GRAPH_H_
