#include "dag/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace sky::dag {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

Barrier::Barrier(size_t num_participants)
    : participants_(num_participants == 0 ? 1 : num_participants) {}

void Barrier::ArriveAndWait(const std::function<void()>& on_complete) {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t gen = generation_;
  if (++arrived_ == participants_) {
    // Leader: reset for the next generation BEFORE running the completion,
    // so a throwing callback still leaves the barrier released and reusable.
    arrived_ = 0;
    ++generation_;
    if (on_complete != nullptr) {
      try {
        on_complete();
      } catch (...) {
        cv_.notify_all();
        throw;
      }
    }
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != gen; });
}

namespace {

/// Shared by the caller and the helper tasks of one ParallelFor. Held via
/// shared_ptr: helper tasks that only get scheduled after the loop finished
/// find no index left and return without touching anything but the counter.
struct ParallelForState {
  explicit ParallelForState(std::function<void(size_t)> f, size_t count)
      : fn(std::move(f)), n(count) {}

  std::function<void(size_t)> fn;
  const size_t n;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;
};

void DrainParallelFor(const std::shared_ptr<ParallelForState>& state) {
  for (;;) {
    size_t i = state->next.fetch_add(1);
    if (i >= state->n) return;
    try {
      state->fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->error) state->error = std::current_exception();
    }
    if (state->done.fetch_add(1) + 1 == state->n) {
      // Notify under the mutex so the caller cannot miss the wakeup between
      // its predicate check and its wait.
      std::lock_guard<std::mutex> lock(state->mu);
      state->cv.notify_all();
    }
  }
}

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ParallelForState>(fn, n);
  size_t helpers = std::min(n - 1, pool->num_threads());
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state] { DrainParallelFor(state); });
  }
  DrainParallelFor(state);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done.load() == state->n; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

void ParallelForChunked(
    ThreadPool* pool, size_t n, size_t chunk_size,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (chunk_size == 0) chunk_size = 1;
  size_t chunks = (n + chunk_size - 1) / chunk_size;
  ParallelFor(pool, chunks, [&](size_t c) {
    size_t begin = c * chunk_size;
    size_t end = std::min(n, begin + chunk_size);
    fn(c, begin, end);
  });
}

size_t DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace sky::dag
