#include "dag/task_graph.h"

#include <queue>

namespace sky::dag {

size_t TaskGraph::AddNode(TaskNode node) {
  nodes_.push_back(std::move(node));
  parents_.emplace_back();
  children_.emplace_back();
  return nodes_.size() - 1;
}

Status TaskGraph::AddEdge(size_t from, size_t to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (from == to) return Status::InvalidArgument("self edge");
  children_[from].push_back(to);
  parents_[to].push_back(from);
  return Status::Ok();
}

Result<std::vector<size_t>> TaskGraph::TopoOrder() const {
  std::vector<size_t> indegree(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) indegree[i] = parents_[i].size();
  std::queue<size_t> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<size_t> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    size_t u = ready.front();
    ready.pop();
    order.push_back(u);
    for (size_t v : children_[u]) {
      if (--indegree[v] == 0) ready.push(v);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::InvalidArgument("task graph contains a cycle");
  }
  return order;
}

Status TaskGraph::Validate() const {
  auto order = TopoOrder();
  return order.ok() ? Status::Ok() : order.status();
}

double TaskGraph::TotalOnPremWork() const {
  double total = 0.0;
  for (const TaskNode& n : nodes_) total += n.onprem_runtime_s;
  return total;
}

size_t Placement::NumCloudNodes() const {
  size_t n = 0;
  for (Loc l : node_loc) n += (l == Loc::kCloud) ? 1 : 0;
  return n;
}

double Placement::CloudCost(const TaskGraph& g) const {
  double cost = 0.0;
  for (size_t i = 0; i < node_loc.size() && i < g.NumNodes(); ++i) {
    if (node_loc[i] == Loc::kCloud) cost += g.node(i).cloud_cost_usd;
  }
  return cost;
}

}  // namespace sky::dag
