#ifndef SKYSCRAPER_DAG_EXECUTOR_H_
#define SKYSCRAPER_DAG_EXECUTOR_H_

#include <vector>

#include "dag/task_graph.h"
#include "dag/thread_pool.h"
#include "util/result.h"

namespace sky::dag {

struct ExecutionReport {
  /// Wall-clock makespan of the whole DAG in seconds.
  double makespan_s = 0.0;
  /// Per-node completion time relative to the start, seconds.
  std::vector<double> finish_times_s;
};

/// Executes the `work` callables of a TaskGraph on a thread pool, honoring
/// dependency edges. This is the "real hardware" counterpart to the
/// Appendix-M simulator; the simulator-accuracy benchmark (Figs 22-23)
/// compares the two. Nodes without a callable complete instantly.
Result<ExecutionReport> ExecuteDag(const TaskGraph& graph, ThreadPool* pool);

/// A deterministic synthetic compute kernel that busy-works for roughly
/// `millis` milliseconds of single-core time. Used to emulate UDFs (YOLO,
/// KCF, ...) whose real implementations are unavailable offline.
void BusyWorkMillis(double millis);

}  // namespace sky::dag

#endif  // SKYSCRAPER_DAG_EXECUTOR_H_
