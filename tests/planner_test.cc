#include "core/planner.h"

#include <gtest/gtest.h>

#include "ml/kmeans.h"

namespace sky::core {
namespace {

/// Categories with hand-set centers: 2 categories x 3 configs.
/// Category 0 ("easy"): all configs good. Category 1 ("hard"): only the
/// expensive config is good.
ContentCategories MakeCategories() {
  ml::KMeansModel km;
  km.centers = {{0.92, 0.95, 0.98},   // easy content
                {0.30, 0.60, 0.95}};  // hard content
  return ContentCategories::FromKMeans(std::move(km));
}

const std::vector<double> kCosts = {1.0, 4.0, 12.0};

TEST(PlannerTest, RowsNormalizedAndBudgetRespected) {
  ContentCategories cats = MakeCategories();
  std::vector<double> forecast = {0.6, 0.4};
  auto plan = ComputeKnobPlan(cats, forecast, kCosts, 5.0);
  ASSERT_TRUE(plan.ok());
  for (size_t c = 0; c < 2; ++c) {
    double row = 0.0;
    for (size_t k = 0; k < 3; ++k) {
      double a = plan->alpha.At(c, k);
      EXPECT_GE(a, -1e-9);
      row += a;
    }
    EXPECT_NEAR(row, 1.0, 1e-6);
  }
  EXPECT_LE(plan->expected_work, 5.0 + 1e-6);
  EXPECT_GT(plan->expected_quality, 0.0);
}

TEST(PlannerTest, GenerousBudgetPicksBestEverywhere) {
  ContentCategories cats = MakeCategories();
  std::vector<double> forecast = {0.5, 0.5};
  auto plan = ComputeKnobPlan(cats, forecast, kCosts, 100.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->alpha.At(0, 2), 1.0, 1e-6);
  EXPECT_NEAR(plan->alpha.At(1, 2), 1.0, 1e-6);
}

TEST(PlannerTest, TightBudgetPicksCheapEverywhere) {
  ContentCategories cats = MakeCategories();
  std::vector<double> forecast = {0.5, 0.5};
  auto plan = ComputeKnobPlan(cats, forecast, kCosts, 1.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->alpha.At(0, 0), 1.0, 1e-6);
  EXPECT_NEAR(plan->alpha.At(1, 0), 1.0, 1e-6);
}

TEST(PlannerTest, MidBudgetSpendsOnHardContentFirst) {
  // The expensive config gains +0.68 on hard content but only +0.06 on
  // easy content: a mid budget must be allocated to the hard category.
  ContentCategories cats = MakeCategories();
  std::vector<double> forecast = {0.5, 0.5};
  auto plan = ComputeKnobPlan(cats, forecast, kCosts, 6.0);
  ASSERT_TRUE(plan.ok());
  double easy_expensive = plan->alpha.At(0, 2);
  double hard_expensive = plan->alpha.At(1, 2);
  EXPECT_GT(hard_expensive, easy_expensive + 0.3);
}

TEST(PlannerTest, ForecastShiftsAllocation) {
  ContentCategories cats = MakeCategories();
  // When hard content is rare, the same budget buys more expensive
  // processing per hard segment.
  auto rare = ComputeKnobPlan(cats, {0.9, 0.1}, kCosts, 4.0);
  auto common = ComputeKnobPlan(cats, {0.1, 0.9}, kCosts, 4.0);
  ASSERT_TRUE(rare.ok() && common.ok());
  EXPECT_GT(rare->alpha.At(1, 2), common->alpha.At(1, 2));
}

TEST(PlannerTest, InfeasibleBudgetSurfacesResourceExhausted) {
  ContentCategories cats = MakeCategories();
  auto plan = ComputeKnobPlan(cats, {0.5, 0.5}, kCosts, 0.5);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kResourceExhausted);
}

TEST(PlannerTest, RejectsShapeMismatches) {
  ContentCategories cats = MakeCategories();
  EXPECT_FALSE(ComputeKnobPlan(cats, {1.0}, kCosts, 5.0).ok());
  EXPECT_FALSE(ComputeKnobPlan(cats, {0.5, 0.5}, {1.0}, 5.0).ok());
  EXPECT_FALSE(ComputeKnobPlan(cats, {0.5, 0.5}, kCosts, 0.0).ok());
}

TEST(PlannerTest, MoreBudgetNeverHurtsQuality) {
  ContentCategories cats = MakeCategories();
  std::vector<double> forecast = {0.6, 0.4};
  double prev = 0.0;
  for (double budget : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    auto plan = ComputeKnobPlan(cats, forecast, kCosts, budget);
    ASSERT_TRUE(plan.ok());
    EXPECT_GE(plan->expected_quality, prev - 1e-9);
    prev = plan->expected_quality;
  }
}

}  // namespace
}  // namespace sky::core
