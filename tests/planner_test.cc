#include "core/planner.h"

#include <gtest/gtest.h>

#include "ml/kmeans.h"

namespace sky::core {
namespace {

/// Categories with hand-set centers: 2 categories x 3 configs.
/// Category 0 ("easy"): all configs good. Category 1 ("hard"): only the
/// expensive config is good.
ContentCategories MakeCategories() {
  ml::KMeansModel km;
  km.centers = {{0.92, 0.95, 0.98},   // easy content
                {0.30, 0.60, 0.95}};  // hard content
  return ContentCategories::FromKMeans(std::move(km));
}

const std::vector<double> kCosts = {1.0, 4.0, 12.0};

/// Every planner property must hold on both backends: the structured MCKP
/// solver (default) and the simplex reference oracle.
class PlannerTest : public ::testing::TestWithParam<PlannerBackend> {
 protected:
  PlannerBackend backend() const { return GetParam(); }
};

TEST_P(PlannerTest, RowsNormalizedAndBudgetRespected) {
  ContentCategories cats = MakeCategories();
  std::vector<double> forecast = {0.6, 0.4};
  auto plan = ComputeKnobPlan(cats, forecast, kCosts, 5.0, backend());
  ASSERT_TRUE(plan.ok());
  for (size_t c = 0; c < 2; ++c) {
    double row = 0.0;
    for (size_t k = 0; k < 3; ++k) {
      double a = plan->alpha.At(c, k);
      EXPECT_GE(a, -1e-9);
      row += a;
    }
    EXPECT_NEAR(row, 1.0, 1e-6);
  }
  EXPECT_LE(plan->expected_work, 5.0 + 1e-6);
  EXPECT_GT(plan->expected_quality, 0.0);
}

TEST_P(PlannerTest, GenerousBudgetPicksBestEverywhere) {
  ContentCategories cats = MakeCategories();
  std::vector<double> forecast = {0.5, 0.5};
  auto plan = ComputeKnobPlan(cats, forecast, kCosts, 100.0, backend());
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->alpha.At(0, 2), 1.0, 1e-6);
  EXPECT_NEAR(plan->alpha.At(1, 2), 1.0, 1e-6);
}

TEST_P(PlannerTest, TightBudgetPicksCheapEverywhere) {
  ContentCategories cats = MakeCategories();
  std::vector<double> forecast = {0.5, 0.5};
  auto plan = ComputeKnobPlan(cats, forecast, kCosts, 1.0, backend());
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->alpha.At(0, 0), 1.0, 1e-6);
  EXPECT_NEAR(plan->alpha.At(1, 0), 1.0, 1e-6);
}

TEST_P(PlannerTest, MidBudgetSpendsOnHardContentFirst) {
  // The expensive config gains +0.68 on hard content but only +0.06 on
  // easy content: a mid budget must be allocated to the hard category.
  ContentCategories cats = MakeCategories();
  std::vector<double> forecast = {0.5, 0.5};
  auto plan = ComputeKnobPlan(cats, forecast, kCosts, 6.0, backend());
  ASSERT_TRUE(plan.ok());
  double easy_expensive = plan->alpha.At(0, 2);
  double hard_expensive = plan->alpha.At(1, 2);
  EXPECT_GT(hard_expensive, easy_expensive + 0.3);
}

TEST_P(PlannerTest, ForecastShiftsAllocation) {
  ContentCategories cats = MakeCategories();
  // When hard content is rare, the same budget buys more expensive
  // processing per hard segment.
  auto rare = ComputeKnobPlan(cats, {0.9, 0.1}, kCosts, 4.0, backend());
  auto common = ComputeKnobPlan(cats, {0.1, 0.9}, kCosts, 4.0, backend());
  ASSERT_TRUE(rare.ok() && common.ok());
  EXPECT_GT(rare->alpha.At(1, 2), common->alpha.At(1, 2));
}

TEST_P(PlannerTest, InfeasibleBudgetSurfacesResourceExhausted) {
  ContentCategories cats = MakeCategories();
  auto plan = ComputeKnobPlan(cats, {0.5, 0.5}, kCosts, 0.5, backend());
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kResourceExhausted);
}

TEST_P(PlannerTest, RejectsShapeMismatches) {
  ContentCategories cats = MakeCategories();
  EXPECT_FALSE(ComputeKnobPlan(cats, {1.0}, kCosts, 5.0, backend()).ok());
  EXPECT_FALSE(ComputeKnobPlan(cats, {0.5, 0.5}, {1.0}, 5.0, backend()).ok());
  EXPECT_FALSE(ComputeKnobPlan(cats, {0.5, 0.5}, kCosts, 0.0, backend()).ok());
}

TEST_P(PlannerTest, MoreBudgetNeverHurtsQuality) {
  ContentCategories cats = MakeCategories();
  std::vector<double> forecast = {0.6, 0.4};
  double prev = 0.0;
  for (double budget : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    auto plan = ComputeKnobPlan(cats, forecast, kCosts, budget, backend());
    ASSERT_TRUE(plan.ok());
    EXPECT_GE(plan->expected_quality, prev - 1e-9);
    prev = plan->expected_quality;
  }
}

TEST_P(PlannerTest, WorkspaceReuseMatchesFreshSolves) {
  ContentCategories cats = MakeCategories();
  PlanWorkspace ws;
  for (double budget : {1.0, 3.0, 6.0, 20.0}) {
    auto reused =
        ComputeKnobPlan(cats, {0.6, 0.4}, kCosts, budget, backend(), &ws);
    auto fresh = ComputeKnobPlan(cats, {0.6, 0.4}, kCosts, budget, backend());
    ASSERT_TRUE(reused.ok() && fresh.ok());
    EXPECT_DOUBLE_EQ(reused->expected_quality, fresh->expected_quality);
    EXPECT_DOUBLE_EQ(reused->expected_work, fresh->expected_work);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, PlannerTest,
                         ::testing::Values(PlannerBackend::kStructured,
                                           PlannerBackend::kSimplex),
                         [](const auto& info) {
                           return info.param == PlannerBackend::kStructured
                                      ? "Structured"
                                      : "Simplex";
                         });

}  // namespace
}  // namespace sky::core
