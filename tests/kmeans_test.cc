#include "ml/kmeans.h"

#include <gtest/gtest.h>

namespace sky::ml {
namespace {

std::vector<std::vector<double>> ThreeBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> pts;
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      pts.push_back({centers[b][0] + rng.Normal(0, 0.5),
                     centers[b][1] + rng.Normal(0, 0.5)});
    }
  }
  return pts;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  auto pts = ThreeBlobs(50, 3);
  KMeansOptions opts;
  opts.k = 3;
  auto model = KMeansFit(pts, opts);
  ASSERT_TRUE(model.ok());
  // Every blob should map to a single distinct cluster.
  std::set<size_t> blob_clusters;
  for (int b = 0; b < 3; ++b) {
    size_t c = model->assignments[b * 50];
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(model->assignments[b * 50 + i], c);
    }
    blob_clusters.insert(c);
  }
  EXPECT_EQ(blob_clusters.size(), 3u);
}

TEST(KMeansTest, InertiaIsSumOfSquaredDistances) {
  std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {10.0}, {11.0}};
  KMeansOptions opts;
  opts.k = 2;
  auto model = KMeansFit(pts, opts);
  ASSERT_TRUE(model.ok());
  // Optimal clustering: {0,1} and {10,11}, centers 0.5 and 10.5.
  EXPECT_NEAR(model->inertia, 4 * 0.25, 1e-9);
}

TEST(KMeansTest, ClassifyMatchesNearestCenter) {
  auto pts = ThreeBlobs(30, 4);
  KMeansOptions opts;
  opts.k = 3;
  auto model = KMeansFit(pts, opts);
  ASSERT_TRUE(model.ok());
  size_t c = model->Classify({10.2, -0.1});
  EXPECT_NEAR(model->centers[c][0], 10.0, 1.0);
  EXPECT_NEAR(model->centers[c][1], 0.0, 1.0);
}

TEST(KMeansTest, ClassifyPartialUsesSingleDimension) {
  KMeansModel model;
  model.centers = {{0.9, 0.2}, {0.5, 0.8}, {0.1, 0.5}};
  // Using only dimension 0 (the current config's quality), value 0.45 is
  // closest to center 1 (0.5).
  EXPECT_EQ(model.ClassifyPartial(0, 0.45), 1u);
  EXPECT_EQ(model.ClassifyPartial(0, 0.95), 0u);
  EXPECT_EQ(model.ClassifyPartial(1, 0.55), 2u);
}

TEST(KMeansTest, RejectsBadInput) {
  KMeansOptions opts;
  opts.k = 5;
  EXPECT_FALSE(KMeansFit({{1.0}, {2.0}}, opts).ok());
  opts.k = 0;
  EXPECT_FALSE(KMeansFit({{1.0}}, opts).ok());
  opts.k = 1;
  EXPECT_FALSE(KMeansFit({{1.0}, {1.0, 2.0}}, opts).ok());
}

TEST(KMeansTest, DeterministicGivenSeed) {
  auto pts = ThreeBlobs(40, 5);
  KMeansOptions opts;
  opts.k = 3;
  opts.seed = 99;
  auto a = KMeansFit(pts, opts);
  auto b = KMeansFit(pts, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, HandlesDuplicatePoints) {
  std::vector<std::vector<double>> pts(10, {1.0, 1.0});
  pts.push_back({5.0, 5.0});
  KMeansOptions opts;
  opts.k = 2;
  auto model = KMeansFit(pts, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->centers.size(), 2u);
}

// Property sweep: inertia never increases with k.
class KMeansInertiaSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(KMeansInertiaSweep, MoreClustersNeverWorse) {
  auto pts = ThreeBlobs(30, 6);
  KMeansOptions small;
  small.k = GetParam();
  KMeansOptions big;
  big.k = GetParam() + 1;
  auto a = KMeansFit(pts, small);
  auto b = KMeansFit(pts, big);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LE(b->inertia, a->inertia + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(KRange, KMeansInertiaSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace sky::ml
