// Dynamic fleet membership. Gates (ISSUE satellite: membership changes at
// lockstep boundaries are bitwise-equivalent to a fleet born with the final
// membership, at worker counts {1, 2, 8}):
//  - AddStream at a boundary: a fleet that admits a third stream mid-run
//    finishes bitwise-identical (traces included) to the rolling-restart
//    reference — RecoverFromCheckpoint of that boundary's snapshot with the
//    newcomer appended as a fresh trailing job;
//  - RemoveStream at a boundary: the surviving streams finish bitwise-
//    identical to a fleet recovered from the same snapshot with the removed
//    stream's slot excised, i.e. one that never carried the stream past
//    that boundary;
//  - boundary discipline: add/remove of a live stream anywhere else is
//    kFailedPrecondition and leaves the fleet undisturbed;
//  - CheapestFleetCostCoreSPerVideoS tracks membership — the admission
//    threshold `sky serve` prices newcomers against.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/multi_stream.h"
#include "core/offline.h"
#include "dag/thread_pool.h"
#include "io/checkpoint_io.h"
#include "workloads/ev_counting.h"

namespace sky {
namespace {

using core::EngineOptions;
using core::EngineResult;
using core::EngineResultsIdentical;
using core::OfflineModel;
using core::StreamEngineJob;
using core::StreamSet;
using core::StreamSetOptions;

class MembershipTest : public ::testing::Test {
 protected:
  static constexpr size_t kStreams = 3;

  static void SetUpTestSuite() {
    cluster_.cores = 4;
    cost_model_ = new sim::CostModel(1.8);
    core::OfflineOptions opts;
    opts.segment_seconds = 4.0;
    opts.train_horizon = Days(3);
    opts.num_categories = 3;
    opts.train_forecaster = false;  // keep the fixture fast
    for (size_t s = 0; s < kStreams; ++s) {
      workloads_[s] =
          new workloads::EvCountingWorkload(static_cast<uint64_t>(6100 + s));
      auto model =
          core::RunOfflinePhase(*workloads_[s], cluster_, *cost_model_, opts);
      ASSERT_TRUE(model.ok()) << model.status().ToString();
      models_[s] = new OfflineModel(std::move(*model));
    }
  }
  static void TearDownTestSuite() {
    for (size_t s = 0; s < kStreams; ++s) {
      delete models_[s];
      delete workloads_[s];
    }
    delete cost_model_;
  }

  static EngineOptions BaseOptions() {
    EngineOptions opts;
    opts.duration = Hours(6);
    opts.plan_interval = Hours(2);
    opts.cloud_budget_usd_per_interval = 1.0;
    // Traces make the bitwise comparisons maximally sensitive.
    opts.record_trace = true;
    opts.trace_resolution_s = 300.0;
    return opts;
  }

  static StreamEngineJob MakeJob(size_t s, SimTime start) {
    StreamEngineJob job;
    job.workload = workloads_[s];
    job.model = models_[s];
    job.cluster = cluster_;
    job.cost_model = cost_model_;
    job.options = BaseOptions();
    job.start_time = start;
    return job;
  }

  /// Steps a joint fleet to its first lockstep boundary past the start —
  /// the single-threaded window where membership changes are legal.
  static void RunToFirstBoundary(StreamSet* set) {
    ASSERT_TRUE(set->RunUntilElapsed(Hours(2)).ok());
    ASSERT_TRUE(set->AtLockstepBoundary());
  }

  static workloads::EvCountingWorkload* workloads_[kStreams];
  static OfflineModel* models_[kStreams];
  static sim::ClusterSpec cluster_;
  static sim::CostModel* cost_model_;
};

workloads::EvCountingWorkload* MembershipTest::workloads_[kStreams] = {};
OfflineModel* MembershipTest::models_[kStreams] = {};
sim::ClusterSpec MembershipTest::cluster_;
sim::CostModel* MembershipTest::cost_model_ = nullptr;

TEST_F(MembershipTest, AddAtBoundaryMatchesFleetBornWithFinalMembership) {
  // Reference: snapshot a {0, 1} fleet at the 2 h boundary, then recover
  // with stream 2 appended as a fresh trailing job starting AT that
  // boundary — by the RecoverFromCheckpoint contract, that IS a fleet whose
  // final membership existed from the newcomer's first plan onward.
  const std::string ckpt_path = "/tmp/sky_membership_add_ckpt.bin";
  {
    auto seed = StreamSet::Create({MakeJob(0, Days(3)), MakeJob(1, Days(3))},
                                  StreamSetOptions{});
    ASSERT_TRUE(seed.ok()) << seed.status().ToString();
    RunToFirstBoundary(&*seed);
    ASSERT_TRUE(seed->SaveCheckpoint(ckpt_path).ok());
  }
  const StreamEngineJob newcomer = MakeJob(2, Days(3) + Hours(2));
  auto reference = StreamSet::RecoverFromCheckpoint(
      {MakeJob(0, Days(3)), MakeJob(1, Days(3)), newcomer}, ckpt_path,
      StreamSetOptions{});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(reference->RunToCompletion().ok());
  auto ref_results = reference->Results();
  ASSERT_EQ(ref_results.size(), kStreams);

  // Live path, at every worker count: run {0, 1}, admit stream 2 at the
  // boundary, finish. Worker counts 1 (no pool), 2 (caller + 1 pool
  // thread), 8 (caller + 7).
  dag::ThreadPool pool_of_1(1);
  dag::ThreadPool pool_of_7(7);
  struct Case {
    const char* label;
    dag::ThreadPool* pool;
  } cases[] = {{"1 worker", nullptr},
               {"2 workers", &pool_of_1},
               {"8 workers", &pool_of_7}};
  for (const Case& c : cases) {
    auto set = StreamSet::Create({MakeJob(0, Days(3)), MakeJob(1, Days(3))},
                                 StreamSetOptions{});
    ASSERT_TRUE(set.ok()) << c.label;
    RunToFirstBoundary(&*set);
    auto slot = set->AddStream(newcomer);
    ASSERT_TRUE(slot.ok()) << c.label << ": " << slot.status().ToString();
    EXPECT_EQ(*slot, 2u) << c.label;
    EXPECT_EQ(set->num_streams(), kStreams) << c.label;
    ASSERT_TRUE(set->RunToCompletion(c.pool).ok()) << c.label;
    auto results = set->Results();
    ASSERT_EQ(results.size(), kStreams);
    for (size_t v = 0; v < kStreams; ++v) {
      ASSERT_TRUE(ref_results[v].ok()) << "stream " << v;
      ASSERT_TRUE(results[v].ok()) << c.label << ", stream " << v;
      EXPECT_TRUE(EngineResultsIdentical(*ref_results[v], *results[v]))
          << c.label << ", stream " << v;
    }
  }
  std::remove(ckpt_path.c_str());
}

TEST_F(MembershipTest, RemoveAtBoundaryMatchesFleetWithoutTheStream) {
  // Snapshot a full {0, 1, 2} fleet at the 2 h boundary; the reference
  // recovers that snapshot with stream 1's slot excised — a fleet that
  // simply does not carry stream 1 past the boundary.
  const std::string ckpt_path = "/tmp/sky_membership_rm_ckpt.bin";
  {
    auto seed = StreamSet::Create({MakeJob(0, Days(3)), MakeJob(1, Days(3)),
                                   MakeJob(2, Days(3))},
                                  StreamSetOptions{});
    ASSERT_TRUE(seed.ok()) << seed.status().ToString();
    RunToFirstBoundary(&*seed);
    ASSERT_TRUE(seed->SaveCheckpoint(ckpt_path).ok());
  }
  auto full = io::LoadFleetCheckpoint(ckpt_path);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(full->streams.size(), kStreams);
  io::FleetCheckpoint doctored;
  doctored.streams.push_back(full->streams[0]);
  doctored.streams.push_back(full->streams[2]);
  auto reference = StreamSet::RecoverFromCheckpoint(
      {MakeJob(0, Days(3)), MakeJob(2, Days(3))}, doctored,
      StreamSetOptions{});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(reference->RunToCompletion().ok());
  auto ref_results = reference->Results();
  ASSERT_EQ(ref_results.size(), 2u);

  dag::ThreadPool pool_of_1(1);
  dag::ThreadPool pool_of_7(7);
  struct Case {
    const char* label;
    dag::ThreadPool* pool;
  } cases[] = {{"1 worker", nullptr},
               {"2 workers", &pool_of_1},
               {"8 workers", &pool_of_7}};
  for (const Case& c : cases) {
    auto set = StreamSet::RecoverFromCheckpoint(
        {MakeJob(0, Days(3)), MakeJob(1, Days(3)), MakeJob(2, Days(3))},
        ckpt_path, StreamSetOptions{});
    ASSERT_TRUE(set.ok()) << c.label;
    ASSERT_TRUE(set->AtLockstepBoundary()) << c.label;
    ASSERT_TRUE(set->RemoveStream(1).ok()) << c.label;
    // The slot stays occupied so indices remain stable; it just reports
    // the removal.
    EXPECT_EQ(set->num_streams(), kStreams) << c.label;
    ASSERT_TRUE(set->RunToCompletion(c.pool).ok()) << c.label;
    auto results = set->Results();
    ASSERT_EQ(results.size(), kStreams);
    EXPECT_EQ(results[1].status().code(), StatusCode::kFailedPrecondition)
        << c.label;
    ASSERT_TRUE(results[0].ok() && results[2].ok()) << c.label;
    ASSERT_TRUE(ref_results[0].ok() && ref_results[1].ok()) << c.label;
    EXPECT_TRUE(EngineResultsIdentical(*ref_results[0], *results[0]))
        << c.label << ", stream 0";
    EXPECT_TRUE(EngineResultsIdentical(*ref_results[1], *results[2]))
        << c.label << ", stream 2";
  }
  std::remove(ckpt_path.c_str());
}

TEST_F(MembershipTest, MembershipChangesRefusedOffBoundary) {
  auto set = StreamSet::Create({MakeJob(0, Days(3)), MakeJob(1, Days(3))},
                               StreamSetOptions{});
  ASSERT_TRUE(set.ok());
  // Step off the creation boundary into the first interval: the fleet now
  // has an installed plan and mid-interval state.
  ASSERT_TRUE(set->Step().ok());
  ASSERT_FALSE(set->AtLockstepBoundary());

  auto slot = set->AddStream(MakeJob(2, Days(3)));
  EXPECT_EQ(slot.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(set->num_streams(), 2u);
  EXPECT_EQ(set->RemoveStream(0).code(), StatusCode::kFailedPrecondition);

  // The refusals disturbed nothing: the fleet still finishes bitwise equal
  // to one that never saw them.
  ASSERT_TRUE(set->RunToCompletion().ok());
  auto reference = StreamSet::Create({MakeJob(0, Days(3)), MakeJob(1, Days(3))},
                                     StreamSetOptions{});
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference->RunToCompletion().ok());
  auto results = set->Results();
  auto ref_results = reference->Results();
  for (size_t v = 0; v < 2; ++v) {
    ASSERT_TRUE(results[v].ok() && ref_results[v].ok());
    EXPECT_TRUE(EngineResultsIdentical(*ref_results[v], *results[v]))
        << "stream " << v;
  }
}

TEST_F(MembershipTest, CheapestFleetCostTracksMembership) {
  auto set = StreamSet::Create({MakeJob(0, Days(3))}, StreamSetOptions{});
  ASSERT_TRUE(set.ok());
  double one = set->CheapestFleetCostCoreSPerVideoS();
  EXPECT_GT(one, 0.0);

  auto slot = set->AddStream(MakeJob(1, Days(3)));
  ASSERT_TRUE(slot.ok());
  double two = set->CheapestFleetCostCoreSPerVideoS();
  EXPECT_GT(two, one);

  // Removing the newcomer at the (still boundary-0) fleet restores the
  // single-stream price exactly — the slot stays occupied but prices as
  // dead weight no longer.
  ASSERT_TRUE(set->RemoveStream(*slot).ok());
  EXPECT_DOUBLE_EQ(set->CheapestFleetCostCoreSPerVideoS(), one);
}

}  // namespace
}  // namespace sky
