#include "dag/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>

namespace sky::dag {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
  pool.Wait();  // no pending work: returns immediately
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelismActuallyHappens) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      int now = concurrent.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      concurrent.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace sky::dag
