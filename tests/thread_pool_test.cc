#include "dag/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace sky::dag {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
  pool.Wait();  // no pending work: returns immediately
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelismActuallyHappens) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      int now = concurrent.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      concurrent.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, SubmitWithFutureReturnsValue) {
  ThreadPool pool(2);
  std::future<int> value = pool.SubmitWithFuture([] { return 41 + 1; });
  EXPECT_EQ(value.get(), 42);
}

TEST(ThreadPoolTest, SubmitWithFuturePropagatesException) {
  ThreadPool pool(2);
  std::future<void> failed = pool.SubmitWithFuture(
      [] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(failed.get(), std::runtime_error);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<int> order;
  ParallelFor(nullptr, 16, [&](size_t i) {
    order.push_back(static_cast<int>(i));  // safe: serial fallback
  });
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, RethrowsFirstExceptionAfterCompletion) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [&](size_t i) {
                    if (i == 37) throw std::runtime_error("boom");
                    completed.fetch_add(1);
                  }),
      std::runtime_error);
  // Every non-throwing index still ran: one failure does not cancel work.
  EXPECT_EQ(completed.load(), 99);
}

TEST(ParallelForTest, NestedLoopsOnSharedPoolDoNotDeadlock) {
  // Outer tasks occupy every worker and then wait on inner loops; the
  // caller-participation design must drain them regardless.
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  ParallelFor(&pool, 4, [&](size_t) {
    ParallelFor(&pool, 8, [&](size_t) { leaf.fetch_add(1); });
  });
  EXPECT_EQ(leaf.load(), 32);
}

TEST(ParallelForTest, ChunkedCoversRangeWithFixedGeometry) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> chunks_seen{0};
  ParallelForChunked(&pool, hits.size(), 32,
                     [&](size_t chunk, size_t begin, size_t end) {
                       chunks_seen.fetch_add(1);
                       EXPECT_EQ(begin, chunk * 32);
                       for (size_t i = begin; i < end; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
  EXPECT_EQ(chunks_seen.load(), 4);  // 32+32+32+4
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, PerIndexRngForksAreThreadCountInvariant) {
  sky::Rng base(123);
  auto draw = [&](ThreadPool* pool, size_t threads) {
    std::vector<double> values(64);
    ParallelFor(pool, values.size(), [&](size_t i) {
      sky::Rng child = base.ForkIndex(i);
      values[i] = child.Uniform(0.0, 1.0);
    });
    return values;
  };
  std::vector<double> serial = draw(nullptr, 1);
  ThreadPool pool(4);
  std::vector<double> parallel = draw(&pool, 4);
  EXPECT_EQ(serial, parallel);
}

TEST(BarrierTest, ReleasesEveryParticipantEachGeneration) {
  constexpr size_t kParticipants = 4;
  constexpr int kGenerations = 50;
  Barrier barrier(kParticipants);
  EXPECT_EQ(barrier.num_participants(), kParticipants);
  std::atomic<int> completions{0};
  std::vector<int> rounds(kParticipants, 0);
  std::vector<std::thread> threads;
  for (size_t p = 0; p < kParticipants; ++p) {
    threads.emplace_back([&, p] {
      for (int g = 0; g < kGenerations; ++g) {
        barrier.ArriveAndWait([&] { completions.fetch_add(1); });
        ++rounds[p];  // own slot: no synchronization needed
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(completions.load(), kGenerations);  // one leader per generation
  for (size_t p = 0; p < kParticipants; ++p) {
    EXPECT_EQ(rounds[p], kGenerations) << "participant " << p;
  }
}

TEST(BarrierTest, CompletionRunsInASingleThreadedWindow) {
  // The counter is deliberately unsynchronized: the completion callback is
  // documented to run while every other participant is parked, with the
  // barrier ordering one generation's callback against the next. Any flaw
  // shows up as a lost increment — and as a race report under TSan.
  constexpr size_t kParticipants = 4;
  constexpr int kGenerations = 200;
  Barrier barrier(kParticipants);
  int plain_counter = 0;
  std::vector<std::thread> threads;
  for (size_t p = 0; p < kParticipants; ++p) {
    threads.emplace_back([&] {
      for (int g = 0; g < kGenerations; ++g) {
        barrier.ArriveAndWait([&] { ++plain_counter; });
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(plain_counter, kGenerations);
}

TEST(BarrierTest, ThrowingCompletionStillReleasesEveryone) {
  constexpr size_t kParticipants = 3;
  constexpr int kGenerations = 10;
  Barrier barrier(kParticipants);
  std::atomic<int> caught{0};
  std::atomic<int> released{0};
  std::vector<std::thread> threads;
  for (size_t p = 0; p < kParticipants; ++p) {
    threads.emplace_back([&] {
      for (int g = 0; g < kGenerations; ++g) {
        try {
          barrier.ArriveAndWait(
              [] { throw std::runtime_error("completion failed"); });
        } catch (const std::runtime_error&) {
          caught.fetch_add(1);
        }
        released.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Exactly the leader of each generation sees the exception; everyone is
  // released every generation regardless (no deadlock, barrier reusable).
  EXPECT_EQ(caught.load(), kGenerations);
  EXPECT_EQ(released.load(), kGenerations * static_cast<int>(kParticipants));
}

TEST(BarrierTest, SingleParticipantNeverBlocks) {
  Barrier barrier(1);
  int runs = 0;
  for (int g = 0; g < 5; ++g) {
    barrier.ArriveAndWait([&] { ++runs; });
  }
  EXPECT_EQ(runs, 5);
  Barrier clamped(0);
  EXPECT_EQ(clamped.num_participants(), 1u);
  clamped.ArriveAndWait();  // null completion is fine too
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace sky::dag
