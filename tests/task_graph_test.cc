#include "dag/task_graph.h"

#include <gtest/gtest.h>

namespace sky::dag {
namespace {

TaskNode Node(std::string name, double runtime) {
  TaskNode n;
  n.name = std::move(name);
  n.onprem_runtime_s = runtime;
  return n;
}

TEST(TaskGraphTest, BuildAndQuery) {
  TaskGraph g;
  size_t a = g.AddNode(Node("decode", 1.0));
  size_t b = g.AddNode(Node("detect", 2.0));
  size_t c = g.AddNode(Node("track", 0.5));
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.Parents(c), (std::vector<size_t>{b}));
  EXPECT_EQ(g.Children(a), (std::vector<size_t>{b}));
  EXPECT_DOUBLE_EQ(g.TotalOnPremWork(), 3.5);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(TaskGraphTest, TopoOrderRespectsDependencies) {
  TaskGraph g;
  size_t a = g.AddNode(Node("a", 1));
  size_t b = g.AddNode(Node("b", 1));
  size_t c = g.AddNode(Node("c", 1));
  ASSERT_TRUE(g.AddEdge(a, c).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  auto order = g.TopoOrder();
  ASSERT_TRUE(order.ok());
  std::vector<size_t> pos(3);
  for (size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  EXPECT_LT(pos[a], pos[c]);
  EXPECT_LT(pos[b], pos[c]);
}

TEST(TaskGraphTest, DetectsCycle) {
  TaskGraph g;
  size_t a = g.AddNode(Node("a", 1));
  size_t b = g.AddNode(Node("b", 1));
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, a).ok());
  EXPECT_FALSE(g.Validate().ok());
  EXPECT_FALSE(g.TopoOrder().ok());
}

TEST(TaskGraphTest, RejectsBadEdges) {
  TaskGraph g;
  size_t a = g.AddNode(Node("a", 1));
  EXPECT_FALSE(g.AddEdge(a, a).ok());
  EXPECT_FALSE(g.AddEdge(a, 5).ok());
  EXPECT_FALSE(g.AddEdge(9, a).ok());
}

TEST(PlacementTest, FactoriesAndCloudCost) {
  TaskGraph g;
  TaskNode n1 = Node("a", 1);
  n1.cloud_cost_usd = 0.5;
  TaskNode n2 = Node("b", 1);
  n2.cloud_cost_usd = 0.25;
  g.AddNode(n1);
  g.AddNode(n2);

  Placement on_prem = Placement::AllOnPrem(2);
  EXPECT_EQ(on_prem.NumCloudNodes(), 0u);
  EXPECT_DOUBLE_EQ(on_prem.CloudCost(g), 0.0);

  Placement cloud = Placement::AllCloud(2);
  EXPECT_EQ(cloud.NumCloudNodes(), 2u);
  EXPECT_DOUBLE_EQ(cloud.CloudCost(g), 0.75);

  Placement mixed{{Loc::kOnPrem, Loc::kCloud}};
  EXPECT_DOUBLE_EQ(mixed.CloudCost(g), 0.25);
}

}  // namespace
}  // namespace sky::dag
