// Parameterized property sweeps over system invariants: buffer safety,
// plan adherence, LP vs knapsack consistency, and simulator sanity across
// randomized inputs.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/engine.h"
#include "core/offline.h"
#include "core/placement_search.h"
#include "core/planner.h"
#include "lp/knapsack.h"
#include "lp/simplex.h"
#include "sim/cluster_sim.h"
#include "util/rng.h"
#include "workloads/ev_counting.h"

namespace sky {
namespace {

/// Base seed for the randomized property sweeps. `check.sh --props` (and the
/// CI props job) export SKY_PROP_SEED to randomize nightly runs; unset, the
/// suites run with a fixed seed so tier-1 stays reproducible.
uint64_t PropSeed() {
  if (const char* env = std::getenv("SKY_PROP_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xC0FFEE;
}

std::string ReproduceLine(const ::testing::TestInfo* info) {
  return "reproduce: SKY_PROP_SEED=" + std::to_string(PropSeed()) +
         " ./property_test --gtest_filter=" + info->test_suite_name() + "." +
         info->name();
}

// ---------------------------------------------------------------------------
// Property: the engine never overflows the buffer, across provisionings.
// ---------------------------------------------------------------------------

struct ProvisioningCase {
  int cores;
  uint64_t buffer_bytes;
  double cloud_usd;
};

class BufferSafetySweep : public ::testing::TestWithParam<ProvisioningCase> {
 protected:
  static void SetUpTestSuite() {
    workload_ = new workloads::EvCountingWorkload();
  }
  static void TearDownTestSuite() { delete workload_; }
  static workloads::EvCountingWorkload* workload_;
};
workloads::EvCountingWorkload* BufferSafetySweep::workload_ = nullptr;

TEST_P(BufferSafetySweep, NoOverflowUnderAnyProvisioning) {
  ProvisioningCase c = GetParam();
  sim::ClusterSpec cluster;
  cluster.cores = c.cores;
  sim::CostModel cost_model(1.8);
  core::OfflineOptions offline;
  offline.segment_seconds = 4.0;
  offline.train_horizon = Days(3);
  offline.num_categories = 3;
  offline.train_forecaster = false;
  auto model = core::RunOfflinePhase(*workload_, cluster, cost_model, offline);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  core::EngineOptions opts;
  opts.duration = Hours(8);
  opts.plan_interval = Hours(8);
  opts.buffer_bytes = c.buffer_bytes;
  opts.cloud_budget_usd_per_interval = c.cloud_usd;
  opts.enable_cloud = c.cloud_usd > 0;
  core::IngestionEngine engine(workload_, &*model, cluster, &cost_model,
                               opts);
  auto result = engine.Run(Days(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->overflow_events, 0u);
  EXPECT_LE(result->buffer_high_water_bytes, c.buffer_bytes);
  EXPECT_LE(result->cloud_usd, c.cloud_usd + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Provisionings, BufferSafetySweep,
    ::testing::Values(ProvisioningCase{2, 64ull << 20, 0.0},
                      ProvisioningCase{2, 4ull << 30, 0.5},
                      ProvisioningCase{4, 16ull << 20, 0.0},
                      ProvisioningCase{4, 4ull << 30, 2.0},
                      ProvisioningCase{8, 512ull << 20, 1.0},
                      ProvisioningCase{16, 1ull << 30, 0.0}));

// ---------------------------------------------------------------------------
// Property: the LP-based plan never beats the knapsack upper bound but gets
// close for block-structured instances.
// ---------------------------------------------------------------------------

class PlannerBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerBoundSweep, LpPlanIsOptimalAmongHistogramPlans) {
  Rng rng(GetParam());
  size_t num_c = 2 + static_cast<size_t>(rng.UniformInt(0, 3));
  size_t num_k = 2 + static_cast<size_t>(rng.UniformInt(0, 4));
  ml::KMeansModel km;
  std::vector<double> costs;
  for (size_t k = 0; k < num_k; ++k) {
    costs.push_back(rng.Uniform(0.5, 10.0));
  }
  for (size_t c = 0; c < num_c; ++c) {
    std::vector<double> center;
    for (size_t k = 0; k < num_k; ++k) center.push_back(rng.Uniform(0.2, 1.0));
    km.centers.push_back(center);
  }
  core::ContentCategories cats =
      core::ContentCategories::FromKMeans(std::move(km));
  std::vector<double> forecast(num_c, 0.0);
  for (double& f : forecast) f = rng.Uniform(0.1, 1.0);
  double sum = 0;
  for (double f : forecast) sum += f;
  for (double& f : forecast) f /= sum;

  double min_cost = *std::min_element(costs.begin(), costs.end());
  double budget = min_cost * rng.Uniform(1.05, 3.0);
  auto plan = core::ComputeKnobPlan(cats, forecast, costs, budget);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // Compare against brute force over pure (one config per category)
  // assignments: the LP (which may mix) must be at least as good.
  double best_pure = 0.0;
  size_t assignments = 1;
  for (size_t c = 0; c < num_c; ++c) assignments *= num_k;
  for (size_t a = 0; a < assignments; ++a) {
    size_t x = a;
    double quality = 0.0, cost = 0.0;
    for (size_t c = 0; c < num_c; ++c) {
      size_t k = x % num_k;
      x /= num_k;
      quality += forecast[c] * cats.CenterQuality(c, k);
      cost += forecast[c] * costs[k];
    }
    if (cost <= budget + 1e-9) best_pure = std::max(best_pure, quality);
  }
  EXPECT_GE(plan->expected_quality, best_pure - 1e-6);
  EXPECT_LE(plan->expected_work, budget + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerBoundSweep,
                         ::testing::Range<uint64_t>(1, 16));

// ---------------------------------------------------------------------------
// Property: simulator makespan bounds — never below the critical path or
// total-work/cores; never above total work (plus transfers).
// ---------------------------------------------------------------------------

class SimBoundsSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimBoundsSweep, MakespanWithinTheoreticalBounds) {
  Rng rng(GetParam());
  dag::TaskGraph g;
  size_t n = 3 + static_cast<size_t>(rng.UniformInt(0, 9));
  for (size_t i = 0; i < n; ++i) {
    dag::TaskNode node;
    node.onprem_runtime_s = rng.Uniform(0.1, 3.0);
    g.AddNode(node);
  }
  // Random forward edges.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.25)) ASSERT_TRUE(g.AddEdge(i, j).ok());
    }
  }
  sim::ClusterSpec cluster;
  cluster.cores = 1 + static_cast<int>(rng.UniformInt(0, 7));
  auto result =
      sim::SimulateDag(g, dag::Placement::AllOnPrem(n), cluster);
  ASSERT_TRUE(result.ok());

  double total = g.TotalOnPremWork();
  // Critical path lower bound.
  std::vector<double> cp(n, 0.0);
  auto order = g.TopoOrder();
  ASSERT_TRUE(order.ok());
  double critical = 0.0;
  for (size_t u : *order) {
    cp[u] += g.node(u).onprem_runtime_s;
    for (size_t p : g.Parents(u)) {
      cp[u] = std::max(cp[u], cp[p] + g.node(u).onprem_runtime_s);
    }
    critical = std::max(critical, cp[u]);
  }
  EXPECT_GE(result->makespan_s,
            std::max(critical, total / cluster.cores) - 1e-9);
  EXPECT_LE(result->makespan_s, total + 1e-9);
  EXPECT_NEAR(result->onprem_core_seconds, total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimBoundsSweep,
                         ::testing::Range<uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Property: greedy multiple-choice knapsack is within 1% of the LP
// relaxation bound on random instances (it is near-optimal for the
// segment-assignment instances Skyscraper produces).
// ---------------------------------------------------------------------------

class KnapsackVsLpSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KnapsackVsLpSweep, GreedyNearLpBound) {
  Rng rng(GetParam());
  size_t groups = 20 + static_cast<size_t>(rng.UniformInt(0, 30));
  size_t options = 3;
  std::vector<std::vector<double>> values(groups), weights(groups);
  for (size_t g = 0; g < groups; ++g) {
    double w = 1.0, v = rng.Uniform(0.2, 0.5);
    for (size_t o = 0; o < options; ++o) {
      values[g].push_back(std::min(1.0, v));
      weights[g].push_back(w);
      w *= rng.Uniform(1.5, 3.0);
      v += rng.Uniform(0.05, 0.3);
    }
  }
  double max_weight = 0;
  for (size_t g = 0; g < groups; ++g) max_weight += weights[g].back();
  double capacity = max_weight * rng.Uniform(0.2, 0.8);

  auto greedy = lp::MultipleChoiceKnapsackGreedy(values, weights, capacity);
  ASSERT_TRUE(greedy.ok());

  // LP relaxation upper bound.
  lp::LinearProgram relax;
  size_t nvars = groups * options;
  relax.objective.assign(nvars, 0.0);
  std::vector<double> budget_row(nvars, 0.0);
  for (size_t g = 0; g < groups; ++g) {
    std::vector<double> norm(nvars, 0.0);
    for (size_t o = 0; o < options; ++o) {
      relax.objective[g * options + o] = values[g][o];
      budget_row[g * options + o] = weights[g][o];
      norm[g * options + o] = 1.0;
    }
    relax.a_eq.push_back(norm);
    relax.b_eq.push_back(1.0);
  }
  relax.a_ub.push_back(budget_row);
  relax.b_ub.push_back(capacity);
  auto bound = lp::SolveLp(relax);
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->status, lp::LpStatus::kOptimal);

  EXPECT_LE(greedy->total_value, bound->objective_value + 1e-6);
  EXPECT_GE(greedy->total_value, bound->objective_value * 0.99 - 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackVsLpSweep,
                         ::testing::Range<uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Property: at equal evaluation budget, the annealed placement search is
// never worse than the greedy hill-climb (its evaluated set is a superset
// chain by chain), across randomized placement instances. 100 instances per
// run; the instance stream is derived from SKY_PROP_SEED.
// ---------------------------------------------------------------------------

dag::TaskGraph RandomPlacementInstance(Rng* rng, sim::ClusterSpec* cluster) {
  dag::TaskGraph g;
  size_t n = 4 + static_cast<size_t>(rng->UniformInt(0, 8));
  for (size_t i = 0; i < n; ++i) {
    dag::TaskNode node;
    node.name = "t" + std::to_string(i);
    node.onprem_runtime_s = rng->Uniform(0.1, 3.0);
    node.cloud_runtime_s = node.onprem_runtime_s * rng->Uniform(0.2, 1.5);
    node.input_bytes = rng->Uniform(0.0, 5e5);
    node.output_bytes = rng->Uniform(0.0, 1e5);
    node.cloud_cost_usd = rng->Uniform(0.0, 0.01);
    // ~Half the nodes land in interchangeability groups (chunked UDFs).
    if (rng->Bernoulli(0.5)) {
      node.group = static_cast<int>(rng->UniformInt(0, 2));
    }
    g.AddNode(node);
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng->Bernoulli(0.2)) EXPECT_TRUE(g.AddEdge(i, j).ok());
    }
  }
  cluster->cores = 1 + static_cast<int>(rng->UniformInt(0, 3));
  cluster->cloud_workers = 2 + static_cast<int>(rng->UniformInt(0, 6));
  return g;
}

class SaVsGreedySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SaVsGreedySweep, AnnealNeverWorseThanGreedyAtEqualBudget) {
  SCOPED_TRACE(ReproduceLine(
      ::testing::UnitTest::GetInstance()->current_test_info()));
  // 10 instances per parameter x 10 parameters = 100 random instances.
  for (size_t instance = 0; instance < 10; ++instance) {
    Rng rng(Rng(PropSeed()).ForkIndex(GetParam()).ForkIndex(instance)
                .UniformInt(0, 1 << 30));
    sim::ClusterSpec cluster;
    dag::TaskGraph g = RandomPlacementInstance(&rng, &cluster);

    core::PlacementSearchOptions opts;
    opts.seed = static_cast<uint64_t>(rng.UniformInt(0, 1 << 30));
    opts.eval_budget = 48;
    opts.restarts = 4;
    opts.backend = core::SearchBackend::kGreedy;
    auto greedy = core::SearchPlacements(g, cluster, opts);
    ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
    opts.backend = core::SearchBackend::kAnneal;
    auto anneal = core::SearchPlacements(g, cluster, opts);
    ASSERT_TRUE(anneal.ok()) << anneal.status().ToString();

    double ref_cost = 0.0, ref_rt = 0.0;
    for (const auto* f : {&*greedy, &*anneal}) {
      for (const core::PlacementProfile& p : *f) {
        ref_cost = std::max(ref_cost, p.cloud_usd);
        ref_rt = std::max(ref_rt, p.runtime_s);
      }
    }
    ref_cost += 1.0;
    ref_rt += 1.0;
    EXPECT_GE(core::FrontierHypervolume(*anneal, ref_cost, ref_rt),
              core::FrontierHypervolume(*greedy, ref_cost, ref_rt) - 1e-12)
        << "instance " << instance;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaVsGreedySweep,
                         ::testing::Range<uint64_t>(0, 10));

// ---------------------------------------------------------------------------
// Property: the annealed search replays bitwise for a fixed (seed, budget)
// at any pool size, on randomized instances.
// ---------------------------------------------------------------------------

class SaDeterminismSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SaDeterminismSweep, AnnealBitwiseAcrossPoolSizes) {
  SCOPED_TRACE(ReproduceLine(
      ::testing::UnitTest::GetInstance()->current_test_info()));
  Rng rng(Rng(PropSeed()).ForkIndex(1000 + GetParam()).UniformInt(0, 1 << 30));
  sim::ClusterSpec cluster;
  dag::TaskGraph g = RandomPlacementInstance(&rng, &cluster);
  core::PlacementSearchOptions opts;
  opts.backend = core::SearchBackend::kAnneal;
  opts.seed = static_cast<uint64_t>(rng.UniformInt(0, 1 << 30));
  opts.eval_budget = 64;
  auto reference = core::SearchPlacements(g, cluster, opts);
  ASSERT_TRUE(reference.ok());
  for (size_t threads : {1u, 2u, 8u}) {
    dag::ThreadPool pool(threads);
    opts.pool = &pool;
    auto got = core::SearchPlacements(g, cluster, opts);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), reference->size()) << threads << " threads";
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].placement.node_loc,
                (*reference)[i].placement.node_loc);
      EXPECT_EQ((*got)[i].runtime_s, (*reference)[i].runtime_s);
      EXPECT_EQ((*got)[i].cloud_usd, (*reference)[i].cloud_usd);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaDeterminismSweep,
                         ::testing::Range<uint64_t>(0, 5));

}  // namespace
}  // namespace sky
