#include "ml/gmm.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sky::ml {
namespace {

std::vector<std::vector<double>> TwoBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> pts;
  for (size_t i = 0; i < per_blob; ++i) {
    pts.push_back({rng.Normal(0, 0.4), rng.Normal(0, 0.4)});
  }
  for (size_t i = 0; i < per_blob; ++i) {
    pts.push_back({rng.Normal(6, 0.8), rng.Normal(6, 0.8)});
  }
  return pts;
}

TEST(GmmTest, RecoversTwoComponents) {
  auto pts = TwoBlobs(120, 11);
  GmmOptions opts;
  opts.k = 2;
  auto model = GmmFit(pts, opts);
  ASSERT_TRUE(model.ok());
  // One mean near (0,0), one near (6,6), weights about equal.
  size_t near_origin = model->means[0][0] < 3.0 ? 0 : 1;
  size_t other = 1 - near_origin;
  EXPECT_NEAR(model->means[near_origin][0], 0.0, 0.3);
  EXPECT_NEAR(model->means[other][0], 6.0, 0.4);
  EXPECT_NEAR(model->weights[0], 0.5, 0.1);
}

TEST(GmmTest, ClassifyAssignsToRightComponent) {
  auto pts = TwoBlobs(100, 12);
  GmmOptions opts;
  opts.k = 2;
  auto model = GmmFit(pts, opts);
  ASSERT_TRUE(model.ok());
  size_t a = model->Classify({0.1, -0.2});
  size_t b = model->Classify({6.2, 5.9});
  EXPECT_NE(a, b);
}

TEST(GmmTest, ClassifyPartialSingleDimension) {
  auto pts = TwoBlobs(100, 13);
  GmmOptions opts;
  opts.k = 2;
  auto model = GmmFit(pts, opts);
  ASSERT_TRUE(model.ok());
  size_t a = model->ClassifyPartial(0, 0.0);
  size_t b = model->ClassifyPartial(0, 6.0);
  EXPECT_NE(a, b);
}

TEST(GmmTest, VarianceFloorRespected) {
  // All identical points: variance must not collapse to zero.
  std::vector<std::vector<double>> pts(20, {1.0, 2.0});
  GmmOptions opts;
  opts.k = 1;
  opts.min_variance = 1e-4;
  auto model = GmmFit(pts, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model->variances[0][0], 1e-4);
  EXPECT_GE(model->variances[0][1], 1e-4);
}

TEST(GmmTest, WeightsSumToOne) {
  auto pts = TwoBlobs(80, 14);
  GmmOptions opts;
  opts.k = 3;
  auto model = GmmFit(pts, opts);
  ASSERT_TRUE(model.ok());
  double sum = 0.0;
  for (double w : model->weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(GmmTest, RejectsBadInput) {
  GmmOptions opts;
  opts.k = 3;
  EXPECT_FALSE(GmmFit({{1.0}, {2.0}}, opts).ok());
  opts.k = 0;
  EXPECT_FALSE(GmmFit({{1.0}}, opts).ok());
}

TEST(GmmTest, LogLikelihoodImprovesOverKMeansInit) {
  auto pts = TwoBlobs(100, 15);
  GmmOptions one_iter;
  one_iter.k = 2;
  one_iter.max_iterations = 1;
  GmmOptions many;
  many.k = 2;
  many.max_iterations = 100;
  auto a = GmmFit(pts, one_iter);
  auto b = GmmFit(pts, many);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GE(b->log_likelihood, a->log_likelihood - 1e-6);
}

}  // namespace
}  // namespace sky::ml
