#include <gtest/gtest.h>

#include "baselines/chameleon.h"
#include "baselines/idealized.h"
#include "baselines/optimum.h"
#include "baselines/static_baseline.h"
#include "baselines/videostorm.h"
#include "core/offline.h"
#include "workloads/ev_counting.h"

namespace sky::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new workloads::EvCountingWorkload();
    cluster_.cores = 4;
    cost_model_ = new sim::CostModel(1.8);
    core::OfflineOptions opts;
    opts.segment_seconds = 4.0;
    opts.train_horizon = Days(4);
    opts.num_categories = 3;
    opts.train_forecaster = false;
    auto model =
        core::RunOfflinePhase(*workload_, cluster_, *cost_model_, opts);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new core::OfflineModel(std::move(*model));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete cost_model_;
    delete workload_;
  }

  static workloads::EvCountingWorkload* workload_;
  static sim::ClusterSpec cluster_;
  static sim::CostModel* cost_model_;
  static core::OfflineModel* model_;
};

workloads::EvCountingWorkload* BaselinesTest::workload_ = nullptr;
sim::ClusterSpec BaselinesTest::cluster_;
sim::CostModel* BaselinesTest::cost_model_ = nullptr;
core::OfflineModel* BaselinesTest::model_ = nullptr;

TEST_F(BaselinesTest, StaticBaselineScoresAConfig) {
  core::KnobConfig cheapest = core::CheapestConfig(*workload_);
  auto result = RunStaticBaseline(*workload_, cheapest, cluster_,
                                  *cost_model_, 4.0, Days(1), Days(4));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->real_time);
  EXPECT_GT(result->mean_quality, 0.0);
  EXPECT_GT(result->work_core_seconds, 0.0);
}

TEST_F(BaselinesTest, StaticDetectsNonRealTimeConfigs) {
  sim::ClusterSpec tiny;
  tiny.cores = 1;
  core::KnobConfig expensive = core::MostQualitativeConfig(*workload_);
  auto result = RunStaticBaseline(*workload_, expensive, tiny, *cost_model_,
                                  4.0, Days(1), Days(4));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->real_time);
}

TEST_F(BaselinesTest, BestStaticImprovesWithBiggerServers) {
  sim::ClusterSpec small;
  small.cores = 4;
  sim::ClusterSpec big;
  big.cores = 60;
  auto s = BestStaticBaseline(*workload_, small, *cost_model_, 4.0, Days(1),
                              Days(4));
  auto b = BestStaticBaseline(*workload_, big, *cost_model_, 4.0, Days(1),
                              Days(4));
  ASSERT_TRUE(s.ok() && b.ok());
  EXPECT_GE(b->total_quality, s->total_quality);
  EXPECT_TRUE(b->real_time);
}

TEST_F(BaselinesTest, ChameleonAdaptsButPaysProfilingOverhead) {
  ChameleonOptions opts;
  opts.quality_target = 0.85;
  auto result = RunChameleonBaseline(*workload_, model_->profiles, cluster_,
                                     4.0, Days(1), Days(4), opts);
  ASSERT_TRUE(result.ok());
  if (!result->crashed) {
    EXPECT_GT(result->profiling_core_seconds, 0.0);
    EXPECT_GT(result->mean_quality, 0.4);
    EXPECT_GT(result->work_core_seconds, result->profiling_core_seconds);
  }
}

TEST_F(BaselinesTest, ChameleonCrashesWithTinyBuffer) {
  ChameleonOptions opts;
  opts.quality_target = 0.999;  // chases expensive configs
  opts.buffer_bytes = 4 << 20;  // 4 MB: overruns quickly on 4 cores
  auto result = RunChameleonBaseline(*workload_, model_->profiles, cluster_,
                                     4.0, Days(1), Days(4), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->crashed);
  EXPECT_GT(result->crash_time, 0.0);
}

TEST_F(BaselinesTest, VideoStormFillsBufferThenActsStatic) {
  VideoStormOptions opts;
  auto result = RunVideoStormBaseline(*workload_, model_->profiles, 4.0,
                                      Days(1), Days(4), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->mean_quality, 0.0);
  // The buffer gets (nearly) filled during the first peak (Appendix G).
  EXPECT_GT(result->buffer_high_water_bytes, opts.buffer_bytes / 2);
}

TEST_F(BaselinesTest, OptimumQualityMonotoneInBudget) {
  double prev = 0.0;
  double duration = Days(1);
  for (double budget_rate : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    auto result = RunOptimumBaseline(*workload_, model_->profiles, 4.0,
                                     duration, Days(4),
                                     budget_rate * duration);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->total_quality, prev - 1e-9);
    EXPECT_LE(result->work_core_seconds, budget_rate * duration + 1e-6);
    prev = result->total_quality;
  }
}

TEST_F(BaselinesTest, OptimumBeatsStaticAtSameWork) {
  // At the work rate of the best real-time static config, the oracle must
  // do at least as well.
  auto static_result = BestStaticBaseline(*workload_, cluster_, *cost_model_,
                                          4.0, Days(1), Days(4));
  ASSERT_TRUE(static_result.ok());
  auto optimum =
      RunOptimumBaseline(*workload_, model_->profiles, 4.0, Days(1), Days(4),
                         static_result->work_core_seconds);
  ASSERT_TRUE(optimum.ok());
  EXPECT_GE(optimum->total_quality, static_result->total_quality * 0.999);
}

TEST_F(BaselinesTest, IdealizedUnderperformsItsOwnForecast) {
  // Appendix B.1: per-instant forecasts are over-optimistic; realized
  // quality lands below predicted quality.
  auto result = RunIdealizedSystem(*workload_, model_->profiles, 4.0,
                                   Days(1), Days(4), 2.0 * Days(1), 2.0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->predicted_quality, 0.0);
  EXPECT_LT(result->total_quality, result->predicted_quality);
}

TEST_F(BaselinesTest, IdealizedRequiresLookbackRoom) {
  auto result = RunIdealizedSystem(*workload_, model_->profiles, 4.0,
                                   Days(1), Days(1), Days(1), 2.0);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace sky::baselines
