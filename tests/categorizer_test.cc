#include "core/categorizer.h"

#include <gtest/gtest.h>

#include "core/config_filter.h"
#include "workloads/covid.h"

namespace sky::core {
namespace {

std::vector<KnobConfig> FilteredCovid(const workloads::CovidWorkload& covid) {
  ConfigFilterOptions opts;
  opts.presample_count = 30;
  opts.search_segment_count = 4;
  opts.train_horizon = Days(4);
  auto filtered = FilterKnobConfigs(covid, opts);
  EXPECT_TRUE(filtered.ok());
  return *filtered;
}

TEST(CategorizerTest, BuildsRequestedNumberOfCategories) {
  workloads::CovidWorkload covid;
  std::vector<KnobConfig> configs = FilteredCovid(covid);
  CategorizerOptions opts;
  opts.num_categories = 3;
  opts.train_horizon = Days(4);
  opts.segment_seconds = 4.0;
  auto cats = BuildContentCategories(covid, configs, opts);
  ASSERT_TRUE(cats.ok());
  EXPECT_EQ(cats->NumCategories(), 3u);
  EXPECT_EQ(cats->NumConfigs(), configs.size());
  for (size_t c = 0; c < 3; ++c) {
    for (size_t k = 0; k < configs.size(); ++k) {
      EXPECT_GE(cats->CenterQuality(c, k), 0.0);
      EXPECT_LE(cats->CenterQuality(c, k), 1.0);
    }
  }
}

TEST(CategorizerTest, CategoriesSeparateEasyFromHardContent) {
  workloads::CovidWorkload covid;
  std::vector<KnobConfig> configs = FilteredCovid(covid);
  CategorizerOptions opts;
  opts.num_categories = 3;
  opts.train_horizon = Days(6);
  opts.segment_seconds = 4.0;
  auto cats = BuildContentCategories(covid, configs, opts);
  ASSERT_TRUE(cats.ok());
  video::ContentState easy;
  easy.density = 0.03;
  easy.occlusion = 0.02;
  video::ContentState hard;
  hard.density = 0.9;
  hard.occlusion = 0.85;
  size_t easy_cat = cats->ClassifyFull(TrueQualityVector(covid, configs, easy));
  size_t hard_cat = cats->ClassifyFull(TrueQualityVector(covid, configs, hard));
  EXPECT_NE(easy_cat, hard_cat);
}

TEST(CategorizerTest, PartialClassificationMostlyMatchesFull) {
  // §4.2 / §5.6: one quality dimension should discriminate categories well
  // (Type-A errors are rare).
  workloads::CovidWorkload covid;
  std::vector<KnobConfig> configs = FilteredCovid(covid);
  CategorizerOptions opts;
  opts.num_categories = 3;
  opts.train_horizon = Days(6);
  opts.segment_seconds = 4.0;
  auto cats = BuildContentCategories(covid, configs, opts);
  ASSERT_TRUE(cats.ok());

  // Use a discriminating config dimension: the cheapest (index 0 after
  // cost-sorting) typically spreads across categories.
  size_t agree = 0, total = 0;
  for (double t = 0; t < Days(2); t += 120.0) {
    video::ContentState s = covid.content_process().At(Days(6) + t);
    std::vector<double> quals = TrueQualityVector(covid, configs, s);
    size_t full = cats->ClassifyFull(quals);
    size_t partial = cats->ClassifyPartial(0, quals[0]);
    agree += full == partial ? 1 : 0;
    ++total;
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.85);
}

TEST(CategorizerTest, GmmBackendWorks) {
  workloads::CovidWorkload covid;
  std::vector<KnobConfig> configs = FilteredCovid(covid);
  CategorizerOptions opts;
  opts.num_categories = 3;
  opts.train_horizon = Days(4);
  opts.segment_seconds = 4.0;
  opts.backend = CategorizerBackend::kGmm;
  auto cats = BuildContentCategories(covid, configs, opts);
  ASSERT_TRUE(cats.ok());
  EXPECT_EQ(cats->backend(), CategorizerBackend::kGmm);
  EXPECT_EQ(cats->NumCategories(), 3u);
  video::ContentState mid = covid.content_process().At(Hours(15));
  std::vector<double> q = TrueQualityVector(covid, configs, mid);
  EXPECT_LT(cats->ClassifyFull(q), 3u);
  EXPECT_LT(cats->ClassifyPartial(0, q[0]), 3u);
}

TEST(CategorizerTest, RejectsBadOptions) {
  workloads::CovidWorkload covid;
  std::vector<KnobConfig> configs = FilteredCovid(covid);
  CategorizerOptions opts;
  opts.num_categories = 0;
  EXPECT_FALSE(BuildContentCategories(covid, configs, opts).ok());
  CategorizerOptions opts2;
  EXPECT_FALSE(BuildContentCategories(covid, {}, opts2).ok());
}

TEST(CategorizerTest, QualityVectorHelpers) {
  workloads::CovidWorkload covid;
  std::vector<KnobConfig> configs = FilteredCovid(covid);
  video::ContentState s = covid.content_process().At(Hours(12));
  std::vector<double> true_q = TrueQualityVector(covid, configs, s);
  EXPECT_EQ(true_q.size(), configs.size());
  Rng rng(3);
  std::vector<double> measured = SegmentQualityVector(covid, configs, s, &rng);
  EXPECT_EQ(measured.size(), configs.size());
  double diff = 0;
  for (size_t i = 0; i < true_q.size(); ++i) {
    diff += std::abs(measured[i] - true_q[i]);
  }
  EXPECT_GT(diff, 0.0);       // noise present
  EXPECT_LT(diff / true_q.size(), 0.15);  // but small
}

}  // namespace
}  // namespace sky::core
