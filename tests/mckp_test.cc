#include "lp/mckp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/planner.h"
#include "lp/simplex.h"
#include "ml/kmeans.h"
#include "util/rng.h"

namespace sky {
namespace {

// ---------------------------------------------------------------------------
// Direct MckpSolver unit tests.
// ---------------------------------------------------------------------------

TEST(MckpSolverTest, PicksBestValueUnderGenerousBudget) {
  // Two groups, flat layout: group 0 = {0,1,2}, group 1 = {3,4}.
  std::vector<double> costs = {1.0, 2.0, 5.0, 1.0, 3.0};
  std::vector<double> values = {0.2, 0.5, 0.9, 0.1, 0.8};
  std::vector<size_t> offsets = {0, 3, 5};
  lp::MckpSolver solver;
  lp::MckpSolution sol;
  ASSERT_TRUE(solver
                  .Solve(costs.data(), values.data(), offsets.data(), 2, 100.0,
                         &sol)
                  .ok());
  ASSERT_EQ(sol.status, lp::MckpStatus::kOptimal);
  EXPECT_EQ(sol.choice[0].lo, 2u);
  EXPECT_EQ(sol.choice[0].hi, 2u);
  EXPECT_EQ(sol.choice[1].lo, 4u);
  EXPECT_NEAR(sol.objective, 0.9 + 0.8, 1e-12);
  EXPECT_NEAR(sol.lambda, 0.0, 1e-12);  // budget not binding
}

TEST(MckpSolverTest, InfeasibleWhenCheapestExceedsBudget) {
  std::vector<double> costs = {2.0, 4.0};
  std::vector<double> values = {0.5, 0.9};
  std::vector<size_t> offsets = {0, 2};
  lp::MckpSolver solver;
  lp::MckpSolution sol;
  ASSERT_TRUE(
      solver.Solve(costs.data(), values.data(), offsets.data(), 1, 1.0, &sol)
          .ok());
  EXPECT_EQ(sol.status, lp::MckpStatus::kInfeasible);
}

TEST(MckpSolverTest, SplitsTheCrossingEdgeExactly) {
  // One group, two options: base cost 1, upgrade cost 5. Budget 3 sits
  // exactly halfway along the edge.
  std::vector<double> costs = {1.0, 5.0};
  std::vector<double> values = {0.2, 1.0};
  std::vector<size_t> offsets = {0, 2};
  lp::MckpSolver solver;
  lp::MckpSolution sol;
  ASSERT_TRUE(
      solver.Solve(costs.data(), values.data(), offsets.data(), 1, 3.0, &sol)
          .ok());
  ASSERT_EQ(sol.status, lp::MckpStatus::kOptimal);
  EXPECT_EQ(sol.choice[0].lo, 0u);
  EXPECT_EQ(sol.choice[0].hi, 1u);
  EXPECT_NEAR(sol.choice[0].frac_hi, 0.5, 1e-12);
  EXPECT_NEAR(sol.total_cost, 3.0, 1e-12);
  EXPECT_NEAR(sol.objective, 0.2 + 0.5 * 0.8, 1e-12);
  EXPECT_NEAR(sol.lambda, 0.8 / 4.0, 1e-12);  // the split edge's ratio
}

TEST(MckpSolverTest, DominatedOptionsNeverSelected) {
  // Option 1 costs more than option 2 but is worth less; option 3 lies
  // under the hull chord from 0 to 4.
  std::vector<double> costs = {1.0, 4.0, 3.0, 5.0, 9.0};
  std::vector<double> values = {0.1, 0.3, 0.5, 0.55, 0.9};
  std::vector<size_t> offsets = {0, 5};
  lp::MckpSolver solver;
  lp::MckpSolution sol;
  for (double budget : {1.0, 2.0, 3.5, 6.0, 20.0}) {
    ASSERT_TRUE(solver
                    .Solve(costs.data(), values.data(), offsets.data(), 1,
                           budget, &sol)
                    .ok());
    ASSERT_EQ(sol.status, lp::MckpStatus::kOptimal);
    EXPECT_NE(sol.choice[0].lo, 1u);
    EXPECT_NE(sol.choice[0].hi, 1u);
    EXPECT_NE(sol.choice[0].lo, 3u);
    EXPECT_NE(sol.choice[0].hi, 3u);
  }
}

TEST(MckpSolverTest, NearEqualCostKeepsTheMoreValuableOption) {
  // Two options whose costs differ by less than the solver's epsilon but
  // whose values differ hugely: the cheaper-but-worthless one must be
  // dominated away, not the valuable one (regression: the hull filter used
  // to skip any near-equal-cost successor as a "duplicate").
  std::vector<double> costs = {1.0, 1.0 + 1e-10};
  std::vector<double> values = {0.1, 0.9};
  std::vector<size_t> offsets = {0, 2};
  lp::MckpSolver solver;
  lp::MckpSolution sol;
  ASSERT_TRUE(
      solver.Solve(costs.data(), values.data(), offsets.data(), 1, 10.0, &sol)
          .ok());
  ASSERT_EQ(sol.status, lp::MckpStatus::kOptimal);
  EXPECT_EQ(sol.choice[0].lo, 1u);
  EXPECT_NEAR(sol.objective, 0.9, 1e-12);
}

TEST(MckpSolverTest, LambdaPricesTheBudget) {
  // With the budget binding inside an edge, d objective / d budget = lambda.
  std::vector<double> costs = {1.0, 3.0, 8.0, 1.0, 2.0};
  std::vector<double> values = {0.3, 0.7, 0.95, 0.4, 0.6};
  std::vector<size_t> offsets = {0, 3, 5};
  lp::MckpSolver solver;
  lp::MckpSolution a, b;
  double budget = 4.0, delta = 0.25;
  ASSERT_TRUE(solver
                  .Solve(costs.data(), values.data(), offsets.data(), 2,
                         budget, &a)
                  .ok());
  ASSERT_TRUE(solver
                  .Solve(costs.data(), values.data(), offsets.data(), 2,
                         budget + delta, &b)
                  .ok());
  ASSERT_EQ(a.status, lp::MckpStatus::kOptimal);
  ASSERT_GT(a.lambda, 0.0);
  EXPECT_NEAR(b.objective - a.objective, a.lambda * delta, 1e-9);
}

TEST(MckpSolverTest, RejectsMalformedInput) {
  std::vector<double> costs = {1.0};
  std::vector<double> values = {0.5};
  std::vector<size_t> offsets = {0, 1};
  std::vector<size_t> empty_group = {0, 0};
  lp::MckpSolver solver;
  lp::MckpSolution sol;
  EXPECT_FALSE(
      solver.Solve(nullptr, values.data(), offsets.data(), 1, 1.0, &sol).ok());
  EXPECT_FALSE(solver
                   .Solve(costs.data(), values.data(), empty_group.data(), 1,
                          1.0, &sol)
                   .ok());
  std::vector<double> negative = {-1.0};
  EXPECT_FALSE(solver
                   .Solve(negative.data(), values.data(), offsets.data(), 1,
                          1.0, &sol)
                   .ok());
  double nan_budget = std::nan("");
  EXPECT_FALSE(solver
                   .Solve(costs.data(), values.data(), offsets.data(), 1,
                          nan_budget, &sol)
                   .ok());
}

TEST(MckpSolverTest, PlannersRejectNonFiniteBudgets) {
  ml::KMeansModel km;
  km.centers = {{0.5, 0.9}};
  core::ContentCategories cats =
      core::ContentCategories::FromKMeans(std::move(km));
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity()}) {
    for (auto backend :
         {core::PlannerBackend::kStructured, core::PlannerBackend::kSimplex}) {
      EXPECT_FALSE(
          core::ComputeKnobPlan(cats, {1.0}, {1.0, 2.0}, bad, backend).ok());
    }
  }
}

// ---------------------------------------------------------------------------
// Property test: on ~200 randomized planner instances — including degenerate
// ones — the structured solver and the simplex oracle agree on feasibility,
// objective, and expected work to 1e-6.
// ---------------------------------------------------------------------------

struct Instance {
  core::ContentCategories categories;
  std::vector<double> forecast;
  std::vector<double> costs;
  double budget = 0.0;
};

Instance RandomInstance(Rng* rng) {
  Instance inst;
  size_t num_c = 1 + static_cast<size_t>(rng->UniformInt(0, 5));
  size_t num_k = 1 + static_cast<size_t>(rng->UniformInt(0, 7));

  ml::KMeansModel km;
  for (size_t c = 0; c < num_c; ++c) {
    std::vector<double> center;
    for (size_t k = 0; k < num_k; ++k) {
      center.push_back(rng->Uniform(0.0, 1.0));
    }
    km.centers.push_back(std::move(center));
  }
  inst.categories = core::ContentCategories::FromKMeans(std::move(km));

  for (size_t k = 0; k < num_k; ++k) {
    inst.costs.push_back(rng->Uniform(0.1, 10.0));
  }
  // Duplicate a cost occasionally (equal-cost options stress the hull).
  if (num_k >= 2 && rng->Bernoulli(0.2)) {
    inst.costs[num_k - 1] = inst.costs[0];
  }

  inst.forecast.assign(num_c, 0.0);
  for (double& f : inst.forecast) f = rng->Uniform(0.05, 1.0);
  // Zero-probability categories: a quarter of instances zero some (but not
  // all) categories out.
  if (num_c >= 2 && rng->Bernoulli(0.25)) {
    size_t zeros = static_cast<size_t>(rng->UniformInt(1, num_c - 1));
    for (size_t z = 0; z < zeros; ++z) inst.forecast[z] = 0.0;
  }
  double sum = 0.0;
  for (double f : inst.forecast) sum += f;
  for (double& f : inst.forecast) f /= sum;

  // Cheapest feasible work: every category on the min-cost config, weighted
  // by the forecast.
  double min_cost = *std::min_element(inst.costs.begin(), inst.costs.end());
  double max_cost = *std::max_element(inst.costs.begin(), inst.costs.end());
  double roll = rng->Uniform(0.0, 1.0);
  if (roll < 0.1) {
    inst.budget = min_cost * rng->Uniform(0.3, 0.9);  // infeasible
  } else if (roll < 0.2) {
    inst.budget = max_cost * rng->Uniform(1.5, 3.0);  // budget never binds
  } else {
    inst.budget = rng->Uniform(min_cost * 1.05, max_cost * 1.2);
  }
  return inst;
}

TEST(MckpPropertyTest, StructuredMatchesSimplexOnRandomInstances) {
  Rng rng(20260728);
  core::PlanWorkspace structured_ws;
  core::PlanWorkspace simplex_ws;
  size_t infeasible_seen = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Instance inst = RandomInstance(&rng);
    auto structured = core::ComputeKnobPlan(
        inst.categories, inst.forecast, inst.costs, inst.budget,
        core::PlannerBackend::kStructured, &structured_ws);
    auto simplex = core::ComputeKnobPlan(
        inst.categories, inst.forecast, inst.costs, inst.budget,
        core::PlannerBackend::kSimplex, &simplex_ws);
    ASSERT_EQ(structured.ok(), simplex.ok())
        << "feasibility disagreement on trial " << trial;
    if (!structured.ok()) {
      EXPECT_EQ(structured.status().code(), StatusCode::kResourceExhausted);
      EXPECT_EQ(simplex.status().code(), StatusCode::kResourceExhausted);
      ++infeasible_seen;
      continue;
    }
    EXPECT_NEAR(structured->expected_quality, simplex->expected_quality, 1e-6)
        << "objective mismatch on trial " << trial;
    EXPECT_NEAR(structured->expected_work, simplex->expected_work, 1e-6)
        << "work mismatch on trial " << trial;
    EXPECT_LE(structured->expected_work, inst.budget + 1e-6);
    // Rows normalized on the structured side.
    for (size_t c = 0; c < inst.categories.NumCategories(); ++c) {
      double row = 0.0;
      for (size_t k = 0; k < inst.categories.NumConfigs(); ++k) {
        double a = structured->alpha.At(c, k);
        EXPECT_GE(a, -1e-9);
        row += a;
      }
      EXPECT_NEAR(row, 1.0, 1e-9);
    }
  }
  // The generator must actually exercise the degenerate branch.
  EXPECT_GT(infeasible_seen, 5u);
}

TEST(MckpPropertyTest, SingleCategorySingleConfigDegenerate) {
  ml::KMeansModel km;
  km.centers = {{0.7}};
  core::ContentCategories cats =
      core::ContentCategories::FromKMeans(std::move(km));
  auto plan = core::ComputeKnobPlan(cats, {1.0}, {2.0}, 2.5,
                                    core::PlannerBackend::kStructured);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->alpha.At(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(plan->expected_quality, 0.7, 1e-12);
  auto infeasible = core::ComputeKnobPlan(cats, {1.0}, {2.0}, 1.5,
                                          core::PlannerBackend::kStructured);
  EXPECT_FALSE(infeasible.ok());
}

}  // namespace
}  // namespace sky
