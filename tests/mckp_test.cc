#include "lp/mckp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "core/planner.h"
#include "lp/simplex.h"
#include "ml/kmeans.h"
#include "util/rng.h"

namespace sky {
namespace {

// ---------------------------------------------------------------------------
// Direct MckpSolver unit tests.
// ---------------------------------------------------------------------------

TEST(MckpSolverTest, PicksBestValueUnderGenerousBudget) {
  // Two groups, flat layout: group 0 = {0,1,2}, group 1 = {3,4}.
  std::vector<double> costs = {1.0, 2.0, 5.0, 1.0, 3.0};
  std::vector<double> values = {0.2, 0.5, 0.9, 0.1, 0.8};
  std::vector<size_t> offsets = {0, 3, 5};
  lp::MckpSolver solver;
  lp::MckpSolution sol;
  ASSERT_TRUE(solver
                  .Solve(costs.data(), values.data(), offsets.data(), 2, 100.0,
                         &sol)
                  .ok());
  ASSERT_EQ(sol.status, lp::MckpStatus::kOptimal);
  EXPECT_EQ(sol.choice[0].lo, 2u);
  EXPECT_EQ(sol.choice[0].hi, 2u);
  EXPECT_EQ(sol.choice[1].lo, 4u);
  EXPECT_NEAR(sol.objective, 0.9 + 0.8, 1e-12);
  EXPECT_NEAR(sol.lambda, 0.0, 1e-12);  // budget not binding
}

TEST(MckpSolverTest, InfeasibleWhenCheapestExceedsBudget) {
  std::vector<double> costs = {2.0, 4.0};
  std::vector<double> values = {0.5, 0.9};
  std::vector<size_t> offsets = {0, 2};
  lp::MckpSolver solver;
  lp::MckpSolution sol;
  ASSERT_TRUE(
      solver.Solve(costs.data(), values.data(), offsets.data(), 1, 1.0, &sol)
          .ok());
  EXPECT_EQ(sol.status, lp::MckpStatus::kInfeasible);
}

TEST(MckpSolverTest, SplitsTheCrossingEdgeExactly) {
  // One group, two options: base cost 1, upgrade cost 5. Budget 3 sits
  // exactly halfway along the edge.
  std::vector<double> costs = {1.0, 5.0};
  std::vector<double> values = {0.2, 1.0};
  std::vector<size_t> offsets = {0, 2};
  lp::MckpSolver solver;
  lp::MckpSolution sol;
  ASSERT_TRUE(
      solver.Solve(costs.data(), values.data(), offsets.data(), 1, 3.0, &sol)
          .ok());
  ASSERT_EQ(sol.status, lp::MckpStatus::kOptimal);
  EXPECT_EQ(sol.choice[0].lo, 0u);
  EXPECT_EQ(sol.choice[0].hi, 1u);
  EXPECT_NEAR(sol.choice[0].frac_hi, 0.5, 1e-12);
  EXPECT_NEAR(sol.total_cost, 3.0, 1e-12);
  EXPECT_NEAR(sol.objective, 0.2 + 0.5 * 0.8, 1e-12);
  EXPECT_NEAR(sol.lambda, 0.8 / 4.0, 1e-12);  // the split edge's ratio
}

TEST(MckpSolverTest, DominatedOptionsNeverSelected) {
  // Option 1 costs more than option 2 but is worth less; option 3 lies
  // under the hull chord from 0 to 4.
  std::vector<double> costs = {1.0, 4.0, 3.0, 5.0, 9.0};
  std::vector<double> values = {0.1, 0.3, 0.5, 0.55, 0.9};
  std::vector<size_t> offsets = {0, 5};
  lp::MckpSolver solver;
  lp::MckpSolution sol;
  for (double budget : {1.0, 2.0, 3.5, 6.0, 20.0}) {
    ASSERT_TRUE(solver
                    .Solve(costs.data(), values.data(), offsets.data(), 1,
                           budget, &sol)
                    .ok());
    ASSERT_EQ(sol.status, lp::MckpStatus::kOptimal);
    EXPECT_NE(sol.choice[0].lo, 1u);
    EXPECT_NE(sol.choice[0].hi, 1u);
    EXPECT_NE(sol.choice[0].lo, 3u);
    EXPECT_NE(sol.choice[0].hi, 3u);
  }
}

TEST(MckpSolverTest, NearEqualCostKeepsTheMoreValuableOption) {
  // Two options whose costs differ by less than the solver's epsilon but
  // whose values differ hugely: the cheaper-but-worthless one must be
  // dominated away, not the valuable one (regression: the hull filter used
  // to skip any near-equal-cost successor as a "duplicate").
  std::vector<double> costs = {1.0, 1.0 + 1e-10};
  std::vector<double> values = {0.1, 0.9};
  std::vector<size_t> offsets = {0, 2};
  lp::MckpSolver solver;
  lp::MckpSolution sol;
  ASSERT_TRUE(
      solver.Solve(costs.data(), values.data(), offsets.data(), 1, 10.0, &sol)
          .ok());
  ASSERT_EQ(sol.status, lp::MckpStatus::kOptimal);
  EXPECT_EQ(sol.choice[0].lo, 1u);
  EXPECT_NEAR(sol.objective, 0.9, 1e-12);
}

TEST(MckpSolverTest, LambdaPricesTheBudget) {
  // With the budget binding inside an edge, d objective / d budget = lambda.
  std::vector<double> costs = {1.0, 3.0, 8.0, 1.0, 2.0};
  std::vector<double> values = {0.3, 0.7, 0.95, 0.4, 0.6};
  std::vector<size_t> offsets = {0, 3, 5};
  lp::MckpSolver solver;
  lp::MckpSolution a, b;
  double budget = 4.0, delta = 0.25;
  ASSERT_TRUE(solver
                  .Solve(costs.data(), values.data(), offsets.data(), 2,
                         budget, &a)
                  .ok());
  ASSERT_TRUE(solver
                  .Solve(costs.data(), values.data(), offsets.data(), 2,
                         budget + delta, &b)
                  .ok());
  ASSERT_EQ(a.status, lp::MckpStatus::kOptimal);
  ASSERT_GT(a.lambda, 0.0);
  EXPECT_NEAR(b.objective - a.objective, a.lambda * delta, 1e-9);
}

TEST(MckpSolverTest, RejectsMalformedInput) {
  std::vector<double> costs = {1.0};
  std::vector<double> values = {0.5};
  std::vector<size_t> offsets = {0, 1};
  std::vector<size_t> empty_group = {0, 0};
  lp::MckpSolver solver;
  lp::MckpSolution sol;
  EXPECT_FALSE(
      solver.Solve(nullptr, values.data(), offsets.data(), 1, 1.0, &sol).ok());
  EXPECT_FALSE(solver
                   .Solve(costs.data(), values.data(), empty_group.data(), 1,
                          1.0, &sol)
                   .ok());
  std::vector<double> negative = {-1.0};
  EXPECT_FALSE(solver
                   .Solve(negative.data(), values.data(), offsets.data(), 1,
                          1.0, &sol)
                   .ok());
  double nan_budget = std::nan("");
  EXPECT_FALSE(solver
                   .Solve(costs.data(), values.data(), offsets.data(), 1,
                          nan_budget, &sol)
                   .ok());
}

TEST(MckpSolverTest, PlannersRejectNonFiniteBudgets) {
  ml::KMeansModel km;
  km.centers = {{0.5, 0.9}};
  core::ContentCategories cats =
      core::ContentCategories::FromKMeans(std::move(km));
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity()}) {
    for (auto backend :
         {core::PlannerBackend::kStructured, core::PlannerBackend::kSimplex}) {
      EXPECT_FALSE(
          core::ComputeKnobPlan(cats, {1.0}, {1.0, 2.0}, bad, backend).ok());
    }
  }
}

// ---------------------------------------------------------------------------
// Property test: on ~200 randomized planner instances — including degenerate
// ones — the structured solver and the simplex oracle agree on feasibility,
// objective, and expected work to 1e-6.
// ---------------------------------------------------------------------------

struct Instance {
  core::ContentCategories categories;
  std::vector<double> forecast;
  std::vector<double> costs;
  double budget = 0.0;
};

Instance RandomInstance(Rng* rng) {
  Instance inst;
  size_t num_c = 1 + static_cast<size_t>(rng->UniformInt(0, 5));
  size_t num_k = 1 + static_cast<size_t>(rng->UniformInt(0, 7));

  ml::KMeansModel km;
  for (size_t c = 0; c < num_c; ++c) {
    std::vector<double> center;
    for (size_t k = 0; k < num_k; ++k) {
      center.push_back(rng->Uniform(0.0, 1.0));
    }
    km.centers.push_back(std::move(center));
  }
  inst.categories = core::ContentCategories::FromKMeans(std::move(km));

  for (size_t k = 0; k < num_k; ++k) {
    inst.costs.push_back(rng->Uniform(0.1, 10.0));
  }
  // Duplicate a cost occasionally (equal-cost options stress the hull).
  if (num_k >= 2 && rng->Bernoulli(0.2)) {
    inst.costs[num_k - 1] = inst.costs[0];
  }

  inst.forecast.assign(num_c, 0.0);
  for (double& f : inst.forecast) f = rng->Uniform(0.05, 1.0);
  // Zero-probability categories: a quarter of instances zero some (but not
  // all) categories out.
  if (num_c >= 2 && rng->Bernoulli(0.25)) {
    size_t zeros = static_cast<size_t>(rng->UniformInt(1, num_c - 1));
    for (size_t z = 0; z < zeros; ++z) inst.forecast[z] = 0.0;
  }
  double sum = 0.0;
  for (double f : inst.forecast) sum += f;
  for (double& f : inst.forecast) f /= sum;

  // Cheapest feasible work: every category on the min-cost config, weighted
  // by the forecast.
  double min_cost = *std::min_element(inst.costs.begin(), inst.costs.end());
  double max_cost = *std::max_element(inst.costs.begin(), inst.costs.end());
  double roll = rng->Uniform(0.0, 1.0);
  if (roll < 0.1) {
    inst.budget = min_cost * rng->Uniform(0.3, 0.9);  // infeasible
  } else if (roll < 0.2) {
    inst.budget = max_cost * rng->Uniform(1.5, 3.0);  // budget never binds
  } else {
    inst.budget = rng->Uniform(min_cost * 1.05, max_cost * 1.2);
  }
  return inst;
}

TEST(MckpPropertyTest, StructuredMatchesSimplexOnRandomInstances) {
  Rng rng(20260728);
  core::PlanWorkspace structured_ws;
  core::PlanWorkspace simplex_ws;
  size_t infeasible_seen = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Instance inst = RandomInstance(&rng);
    auto structured = core::ComputeKnobPlan(
        inst.categories, inst.forecast, inst.costs, inst.budget,
        core::PlannerBackend::kStructured, &structured_ws);
    auto simplex = core::ComputeKnobPlan(
        inst.categories, inst.forecast, inst.costs, inst.budget,
        core::PlannerBackend::kSimplex, &simplex_ws);
    ASSERT_EQ(structured.ok(), simplex.ok())
        << "feasibility disagreement on trial " << trial;
    if (!structured.ok()) {
      EXPECT_EQ(structured.status().code(), StatusCode::kResourceExhausted);
      EXPECT_EQ(simplex.status().code(), StatusCode::kResourceExhausted);
      ++infeasible_seen;
      continue;
    }
    EXPECT_NEAR(structured->expected_quality, simplex->expected_quality, 1e-6)
        << "objective mismatch on trial " << trial;
    EXPECT_NEAR(structured->expected_work, simplex->expected_work, 1e-6)
        << "work mismatch on trial " << trial;
    EXPECT_LE(structured->expected_work, inst.budget + 1e-6);
    // Rows normalized on the structured side.
    for (size_t c = 0; c < inst.categories.NumCategories(); ++c) {
      double row = 0.0;
      for (size_t k = 0; k < inst.categories.NumConfigs(); ++k) {
        double a = structured->alpha.At(c, k);
        EXPECT_GE(a, -1e-9);
        row += a;
      }
      EXPECT_NEAR(row, 1.0, 1e-9);
    }
  }
  // The generator must actually exercise the degenerate branch.
  EXPECT_GT(infeasible_seen, 5u);
}

TEST(MckpPropertyTest, SingleCategorySingleConfigDegenerate) {
  ml::KMeansModel km;
  km.centers = {{0.7}};
  core::ContentCategories cats =
      core::ContentCategories::FromKMeans(std::move(km));
  auto plan = core::ComputeKnobPlan(cats, {1.0}, {2.0}, 2.5,
                                    core::PlannerBackend::kStructured);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->alpha.At(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(plan->expected_quality, 0.7, 1e-12);
  auto infeasible = core::ComputeKnobPlan(cats, {1.0}, {2.0}, 1.5,
                                          core::PlannerBackend::kStructured);
  EXPECT_FALSE(infeasible.ok());
}

// ---------------------------------------------------------------------------
// IncrementalMckpSolver: warm-started solves must match the cold solver on
// the equivalent flat problem — after rescales, budget sweeps in both
// directions, and mid-sequence group rebuilds. Choices are compared
// exactly (incremental local index + group offset == cold flat index);
// objectives to 1e-9 (fp accumulation order differs between the two).
// ---------------------------------------------------------------------------

struct FlatInstance {
  std::vector<double> costs;
  std::vector<double> values;
  std::vector<size_t> offsets;
  size_t num_groups = 0;
};

FlatInstance RandomFlatInstance(Rng* rng) {
  FlatInstance inst;
  inst.num_groups = 1 + static_cast<size_t>(rng->UniformInt(0, 5));
  inst.offsets.push_back(0);
  for (size_t g = 0; g < inst.num_groups; ++g) {
    size_t num_options = 1 + static_cast<size_t>(rng->UniformInt(0, 7));
    for (size_t j = 0; j < num_options; ++j) {
      inst.costs.push_back(rng->Uniform(0.1, 10.0));
      inst.values.push_back(rng->Uniform(0.0, 1.0));
    }
    inst.offsets.push_back(inst.costs.size());
  }
  return inst;
}

double RandomBudget(const FlatInstance& inst, Rng* rng) {
  double cheapest_sum = 0.0;
  double dearest_sum = 0.0;
  for (size_t g = 0; g < inst.num_groups; ++g) {
    double lo = inst.costs[inst.offsets[g]];
    double hi = lo;
    for (size_t j = inst.offsets[g]; j < inst.offsets[g + 1]; ++j) {
      lo = std::min(lo, inst.costs[j]);
      hi = std::max(hi, inst.costs[j]);
    }
    cheapest_sum += lo;
    dearest_sum += hi;
  }
  double roll = rng->Uniform(0.0, 1.0);
  if (roll < 0.1) return cheapest_sum * rng->Uniform(0.3, 0.9);  // infeasible
  if (roll < 0.2) return dearest_sum * rng->Uniform(1.5, 3.0);   // never binds
  return rng->Uniform(cheapest_sum * 1.01, dearest_sum * 1.2);
}

void FillIncremental(const FlatInstance& inst, lp::IncrementalMckpSolver* inc) {
  inc->Reset(inst.num_groups);
  for (size_t g = 0; g < inst.num_groups; ++g) {
    ASSERT_TRUE(inc->SetGroup(g, inst.costs.data() + inst.offsets[g],
                              inst.values.data() + inst.offsets[g],
                              inst.offsets[g + 1] - inst.offsets[g])
                    .ok());
  }
}

void ExpectIncrementalMatchesCold(const FlatInstance& inst, double budget,
                                  lp::IncrementalMckpSolver* inc,
                                  const std::string& label) {
  lp::MckpSolver cold;
  lp::MckpSolution cold_sol, inc_sol;
  ASSERT_TRUE(cold.Solve(inst.costs.data(), inst.values.data(),
                         inst.offsets.data(), inst.num_groups, budget,
                         &cold_sol)
                  .ok())
      << label;
  ASSERT_TRUE(inc->Solve(budget, &inc_sol).ok()) << label;
  ASSERT_EQ(inc_sol.status, cold_sol.status) << label;
  if (cold_sol.status == lp::MckpStatus::kInfeasible) return;
  EXPECT_NEAR(inc_sol.objective, cold_sol.objective, 1e-9) << label;
  EXPECT_NEAR(inc_sol.total_cost, cold_sol.total_cost, 1e-9) << label;
  EXPECT_NEAR(inc_sol.lambda, cold_sol.lambda, 1e-9) << label;
  ASSERT_EQ(inc_sol.choice.size(), inst.num_groups) << label;
  for (size_t g = 0; g < inst.num_groups; ++g) {
    EXPECT_EQ(inc_sol.choice[g].lo + inst.offsets[g], cold_sol.choice[g].lo)
        << label << ", group " << g;
    EXPECT_EQ(inc_sol.choice[g].hi + inst.offsets[g], cold_sol.choice[g].hi)
        << label << ", group " << g;
    EXPECT_NEAR(inc_sol.choice[g].frac_hi, cold_sol.choice[g].frac_hi, 1e-9)
        << label << ", group " << g;
  }
}

TEST(IncrementalMckpTest, MatchesColdSolverOnRandomInstances) {
  Rng rng(20260808);
  lp::IncrementalMckpSolver inc;
  for (int trial = 0; trial < 100; ++trial) {
    FlatInstance inst = RandomFlatInstance(&rng);
    FillIncremental(inst, &inc);
    // First solve repairs from an empty frontier; the second warm-starts
    // from the first at a different budget.
    for (int solve = 0; solve < 2; ++solve) {
      ExpectIncrementalMatchesCold(
          inst, RandomBudget(inst, &rng), &inc,
          "trial " + std::to_string(trial) + " solve " +
              std::to_string(solve));
    }
  }
}

TEST(IncrementalMckpTest, RescaledResolveMatchesColdRebuild) {
  Rng rng(20260809);
  for (int trial = 0; trial < 20; ++trial) {
    FlatInstance inst = RandomFlatInstance(&rng);
    lp::IncrementalMckpSolver inc;
    FillIncremental(inst, &inc);
    std::vector<double> scale(inst.num_groups, 1.0);
    for (int round = 0; round < 20; ++round) {
      // Rescale a random subset of groups — the forecast-update fast path.
      for (size_t g = 0; g < inst.num_groups; ++g) {
        if (rng.Bernoulli(0.4)) {
          scale[g] = rng.Uniform(0.2, 2.0);
          ASSERT_TRUE(inc.ScaleGroup(g, scale[g]).ok());
        }
      }
      // The cold oracle sees the equivalent fully-rebuilt scaled problem.
      FlatInstance scaled = inst;
      for (size_t g = 0; g < inst.num_groups; ++g) {
        for (size_t j = inst.offsets[g]; j < inst.offsets[g + 1]; ++j) {
          scaled.costs[j] *= scale[g];
          scaled.values[j] *= scale[g];
        }
      }
      ExpectIncrementalMatchesCold(
          scaled, RandomBudget(scaled, &rng), &inc,
          "trial " + std::to_string(trial) + " round " +
              std::to_string(round));
    }
  }
}

TEST(IncrementalMckpTest, BudgetSweepWarmStartsBothDirections) {
  Rng rng(20260810);
  FlatInstance inst = RandomFlatInstance(&rng);
  lp::IncrementalMckpSolver inc;
  FillIncremental(inst, &inc);
  double cheapest_sum = 0.0;
  double dearest_sum = 0.0;
  for (size_t g = 0; g < inst.num_groups; ++g) {
    double lo = inst.costs[inst.offsets[g]];
    double hi = lo;
    for (size_t j = inst.offsets[g]; j < inst.offsets[g + 1]; ++j) {
      lo = std::min(lo, inst.costs[j]);
      hi = std::max(hi, inst.costs[j]);
    }
    cheapest_sum += lo;
    dearest_sum += hi;
  }
  // Ramp the budget up (frontier only advances) then back down (only
  // sheds): every intermediate optimum must match a cold solve.
  for (int step = 0; step <= 20; ++step) {
    double budget =
        cheapest_sum + (dearest_sum * 1.1 - cheapest_sum) * step / 20.0;
    ExpectIncrementalMatchesCold(inst, budget, &inc,
                                 "up step " + std::to_string(step));
  }
  for (int step = 20; step >= 0; --step) {
    double budget =
        cheapest_sum + (dearest_sum * 1.1 - cheapest_sum) * step / 20.0;
    ExpectIncrementalMatchesCold(inst, budget, &inc,
                                 "down step " + std::to_string(step));
  }
}

TEST(IncrementalMckpTest, ZeroScalePinsGroupToCheapestPoint) {
  // Group 0: three options; group 1: cheap-but-poor vs dear-but-good.
  std::vector<double> g0_costs = {1.0, 2.0, 5.0};
  std::vector<double> g0_values = {0.2, 0.5, 0.9};
  std::vector<double> g1_costs = {1.0, 3.0};
  std::vector<double> g1_values = {0.1, 0.8};
  lp::IncrementalMckpSolver inc;
  inc.Reset(2);
  ASSERT_TRUE(inc.SetGroup(0, g0_costs.data(), g0_values.data(), 3).ok());
  ASSERT_TRUE(inc.SetGroup(1, g1_costs.data(), g1_values.data(), 2).ok());
  ASSERT_TRUE(inc.ScaleGroup(1, 0.0).ok());

  lp::MckpSolution sol;
  ASSERT_TRUE(inc.Solve(100.0, &sol).ok());
  ASSERT_EQ(sol.status, lp::MckpStatus::kOptimal);
  // Group 1 contributes nothing and sits on its cheapest point — its
  // zero-cost "upgrade" edge must NOT be taken just because it is free.
  EXPECT_EQ(sol.choice[1].lo, 0u);
  EXPECT_EQ(sol.choice[1].hi, 0u);
  EXPECT_NEAR(sol.choice[1].frac_hi, 0.0, 1e-12);
  EXPECT_NEAR(sol.objective, 0.9, 1e-12);
  EXPECT_NEAR(sol.total_cost, 5.0, 1e-12);

  // Scaling back to 1 restores the full two-group optimum.
  ASSERT_TRUE(inc.ScaleGroup(1, 1.0).ok());
  ASSERT_TRUE(inc.Solve(100.0, &sol).ok());
  ASSERT_EQ(sol.status, lp::MckpStatus::kOptimal);
  EXPECT_EQ(sol.choice[1].lo, 1u);
  EXPECT_NEAR(sol.objective, 0.9 + 0.8, 1e-12);
}

TEST(IncrementalMckpTest, InfeasibleThenFeasibleSequence) {
  std::vector<double> costs = {2.0, 4.0};
  std::vector<double> values = {0.5, 0.9};
  lp::IncrementalMckpSolver inc;
  inc.Reset(1);
  ASSERT_TRUE(inc.SetGroup(0, costs.data(), values.data(), 2).ok());
  lp::MckpSolution sol;
  ASSERT_TRUE(inc.Solve(1.0, &sol).ok());
  EXPECT_EQ(sol.status, lp::MckpStatus::kInfeasible);
  // The infeasible solve must not corrupt the warm state.
  ASSERT_TRUE(inc.Solve(3.0, &sol).ok());
  ASSERT_EQ(sol.status, lp::MckpStatus::kOptimal);
  EXPECT_EQ(sol.choice[0].lo, 0u);
  EXPECT_EQ(sol.choice[0].hi, 1u);
  EXPECT_NEAR(sol.choice[0].frac_hi, 0.5, 1e-9);
  ASSERT_TRUE(inc.Solve(1.0, &sol).ok());
  EXPECT_EQ(sol.status, lp::MckpStatus::kInfeasible);
}

TEST(IncrementalMckpTest, SetGroupRebuildResetsJustThatGroup) {
  Rng rng(20260811);
  FlatInstance inst = RandomFlatInstance(&rng);
  lp::IncrementalMckpSolver inc;
  FillIncremental(inst, &inc);
  lp::MckpSolution sol;
  ASSERT_TRUE(inc.Solve(RandomBudget(inst, &rng), &sol).ok());
  for (int round = 0; round < 10; ++round) {
    // Replace one group's option set wholesale (category re-clustering),
    // keep the rest warm.
    size_t g = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(inst.num_groups) - 1));
    for (size_t j = inst.offsets[g]; j < inst.offsets[g + 1]; ++j) {
      inst.costs[j] = rng.Uniform(0.1, 10.0);
      inst.values[j] = rng.Uniform(0.0, 1.0);
    }
    ASSERT_TRUE(inc.SetGroup(g, inst.costs.data() + inst.offsets[g],
                             inst.values.data() + inst.offsets[g],
                             inst.offsets[g + 1] - inst.offsets[g])
                    .ok());
    ExpectIncrementalMatchesCold(inst, RandomBudget(inst, &rng), &inc,
                                 "round " + std::to_string(round));
  }
}

TEST(IncrementalMckpTest, RejectsMalformedInput) {
  lp::IncrementalMckpSolver inc;
  inc.Reset(2);
  std::vector<double> costs = {1.0, 2.0};
  std::vector<double> values = {0.1, 0.5};
  lp::MckpSolution sol;
  // Solve before every group is initialized.
  ASSERT_TRUE(inc.SetGroup(0, costs.data(), values.data(), 2).ok());
  EXPECT_FALSE(inc.Solve(10.0, &sol).ok());
  // Out-of-range group, empty group, negative cost, bad scales.
  EXPECT_FALSE(inc.SetGroup(2, costs.data(), values.data(), 2).ok());
  EXPECT_FALSE(inc.SetGroup(1, costs.data(), values.data(), 0).ok());
  std::vector<double> negative = {-1.0, 2.0};
  EXPECT_FALSE(inc.SetGroup(1, negative.data(), values.data(), 2).ok());
  EXPECT_FALSE(inc.ScaleGroup(0, -0.5).ok());
  EXPECT_FALSE(inc.ScaleGroup(0, std::nan("")).ok());
  EXPECT_FALSE(inc.ScaleGroup(2, 1.0).ok());
  // A valid second group makes the solver whole again.
  ASSERT_TRUE(inc.SetGroup(1, costs.data(), values.data(), 2).ok());
  EXPECT_TRUE(inc.Solve(10.0, &sol).ok());
}

}  // namespace
}  // namespace sky
