#include "core/config_filter.h"

#include <gtest/gtest.h>

#include "workloads/covid.h"
#include "workloads/mot.h"

namespace sky::core {
namespace {

TEST(MaxMinSampleTest, StartsAtSmallestNorm) {
  std::vector<std::vector<double>> pts = {{5, 5}, {0.1, 0.1}, {9, 0}};
  std::vector<size_t> picked = MaxMinSample(pts, 1);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], 1u);
}

TEST(MaxMinSampleTest, PicksSpreadOutPoints) {
  std::vector<std::vector<double>> pts = {
      {0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}, {5, 8}};
  std::vector<size_t> picked = MaxMinSample(pts, 3);
  ASSERT_EQ(picked.size(), 3u);
  // The three picks should come from the three distinct clusters.
  std::set<int> groups;
  for (size_t i : picked) {
    if (pts[i][0] < 1) groups.insert(0);
    else if (pts[i][1] > 4) groups.insert(2);
    else groups.insert(1);
  }
  EXPECT_EQ(groups.size(), 3u);
}

TEST(MaxMinSampleTest, EdgeCases) {
  EXPECT_TRUE(MaxMinSample({}, 3).empty());
  EXPECT_TRUE(MaxMinSample({{1.0}}, 0).empty());
  // Requesting more than available returns all (distinct) points.
  std::vector<std::vector<double>> pts = {{0.0}, {1.0}};
  EXPECT_EQ(MaxMinSample(pts, 5).size(), 2u);
  // All-identical points: only one can be selected.
  std::vector<std::vector<double>> same(4, {2.0, 2.0});
  EXPECT_EQ(MaxMinSample(same, 3).size(), 1u);
}

TEST(ConfigFilterTest, ReturnsCostSortedSubsetWithExtremes) {
  workloads::CovidWorkload covid;
  ConfigFilterOptions opts;
  opts.presample_count = 30;
  opts.search_segment_count = 4;
  opts.train_horizon = Days(4);
  auto filtered = FilterKnobConfigs(covid, opts);
  ASSERT_TRUE(filtered.ok());
  // A useful filtered set: more than 2, far fewer than the full 40.
  EXPECT_GE(filtered->size(), 3u);
  EXPECT_LT(filtered->size(), covid.knob_space().NumConfigs());
  // Sorted by cost.
  for (size_t i = 1; i < filtered->size(); ++i) {
    EXPECT_LE(covid.CostCoreSecondsPerVideoSecond((*filtered)[i - 1]),
              covid.CostCoreSecondsPerVideoSecond((*filtered)[i]) + 1e-12);
  }
  // Contains the cheapest and the most qualitative configuration.
  const KnobSpace& space = covid.knob_space();
  size_t cheapest_id = space.ConfigToId(CheapestConfig(covid));
  size_t best_id = space.ConfigToId(MostQualitativeConfig(covid));
  bool has_cheapest = false, has_best = false;
  for (const KnobConfig& c : *filtered) {
    has_cheapest |= space.ConfigToId(c) == cheapest_id;
    has_best |= space.ConfigToId(c) == best_id;
  }
  EXPECT_TRUE(has_cheapest);
  EXPECT_TRUE(has_best);
}

TEST(ConfigFilterTest, FilteredSetSpansQualityRange) {
  workloads::MotWorkload mot;
  ConfigFilterOptions opts;
  opts.presample_count = 30;
  opts.search_segment_count = 4;
  opts.train_horizon = Days(4);
  auto filtered = FilterKnobConfigs(mot, opts);
  ASSERT_TRUE(filtered.ok());
  video::ContentState hard;
  hard.density = 0.85;
  hard.occlusion = 0.8;
  double min_q = 2, max_q = -1;
  for (const KnobConfig& c : *filtered) {
    double q = mot.TrueQuality(c, hard);
    min_q = std::min(min_q, q);
    max_q = std::max(max_q, q);
  }
  EXPECT_GT(max_q - min_q, 0.25);
}

TEST(ConfigFilterTest, DeterministicGivenSeed) {
  workloads::CovidWorkload covid;
  ConfigFilterOptions opts;
  opts.presample_count = 20;
  opts.search_segment_count = 3;
  opts.train_horizon = Days(3);
  opts.seed = 77;
  auto a = FilterKnobConfigs(covid, opts);
  auto b = FilterKnobConfigs(covid, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace sky::core
