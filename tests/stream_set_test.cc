// StreamSet: N ingestion sessions on one shared clock. Gates:
//  - independent-planning mode reproduces per-engine Run (and therefore
//    RunStreamEngines) bitwise, for any pool size;
//  - joint mode runs Appendix D's ComputeJointKnobPlan live at every
//    lockstep boundary, end to end;
//  - per-stream error semantics and the lockstep validation hold.

#include <gtest/gtest.h>

#include <memory>

#include "core/multi_stream.h"
#include "dag/thread_pool.h"
#include "workloads/ev_counting.h"

namespace sky::core {
namespace {

class StreamSetTest : public ::testing::Test {
 protected:
  static constexpr size_t kStreams = 3;

  static void SetUpTestSuite() {
    cluster_.cores = 4;
    cost_model_ = new sim::CostModel(1.8);
    OfflineOptions opts;
    opts.segment_seconds = 4.0;
    opts.train_horizon = Days(3);
    opts.num_categories = 3;
    opts.train_forecaster = false;  // keep the fixture fast
    for (size_t s = 0; s < kStreams; ++s) {
      workloads_[s] =
          new workloads::EvCountingWorkload(static_cast<uint64_t>(7300 + s));
      auto model =
          RunOfflinePhase(*workloads_[s], cluster_, *cost_model_, opts);
      ASSERT_TRUE(model.ok()) << model.status().ToString();
      models_[s] = new OfflineModel(std::move(*model));
    }
  }
  static void TearDownTestSuite() {
    for (size_t s = 0; s < kStreams; ++s) {
      delete models_[s];
      delete workloads_[s];
    }
    delete cost_model_;
  }

  static std::vector<StreamEngineJob> MakeJobs() {
    std::vector<StreamEngineJob> jobs;
    for (size_t s = 0; s < kStreams; ++s) {
      StreamEngineJob job;
      job.workload = workloads_[s];
      job.model = models_[s];
      job.cluster = cluster_;
      job.cost_model = cost_model_;
      job.options.duration = Hours(6);
      job.options.plan_interval = Hours(2);
      job.options.cloud_budget_usd_per_interval = 1.0;
      job.start_time = Days(3);
      jobs.push_back(job);
    }
    return jobs;
  }

  static workloads::EvCountingWorkload* workloads_[kStreams];
  static OfflineModel* models_[kStreams];
  static sim::ClusterSpec cluster_;
  static sim::CostModel* cost_model_;
};

workloads::EvCountingWorkload* StreamSetTest::workloads_[kStreams] = {};
OfflineModel* StreamSetTest::models_[kStreams] = {};
sim::ClusterSpec StreamSetTest::cluster_;
sim::CostModel* StreamSetTest::cost_model_ = nullptr;

TEST_F(StreamSetTest, IndependentModeReproducesPerEngineRunsExactly) {
  std::vector<StreamEngineJob> jobs = MakeJobs();

  // Reference: every engine run on its own, serially.
  std::vector<EngineResult> reference;
  for (const StreamEngineJob& job : jobs) {
    IngestionEngine engine(job.workload, job.model, job.cluster,
                           job.cost_model, job.options);
    auto run = engine.Run(job.start_time);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    reference.push_back(std::move(*run));
  }

  StreamSetOptions opts;
  opts.planning = MultiStreamPlanning::kIndependent;
  dag::ThreadPool pool(3);
  for (dag::ThreadPool* p : {static_cast<dag::ThreadPool*>(nullptr), &pool}) {
    auto set = StreamSet::Create(jobs, opts);
    ASSERT_TRUE(set.ok()) << set.status().ToString();
    ASSERT_TRUE(set->RunToCompletion(p).ok());
    ASSERT_TRUE(set->Done());
    auto results = set->Results();
    ASSERT_EQ(results.size(), jobs.size());
    for (size_t v = 0; v < jobs.size(); ++v) {
      ASSERT_TRUE(results[v].ok());
      EXPECT_TRUE(EngineResultsIdentical(reference[v], *results[v]))
          << "stream " << v << (p != nullptr ? " (pooled)" : " (serial)");
    }
  }

  // RunStreamEngines is documented as a thin wrapper over this mode.
  auto wrapped = RunStreamEngines(jobs, &pool);
  ASSERT_EQ(wrapped.size(), jobs.size());
  for (size_t v = 0; v < jobs.size(); ++v) {
    ASSERT_TRUE(wrapped[v].ok());
    EXPECT_TRUE(EngineResultsIdentical(reference[v], *wrapped[v]));
  }
}

TEST_F(StreamSetTest, JointModeRunsEndToEnd) {
  auto set = StreamSet::Create(MakeJobs(), StreamSetOptions{});
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->planning(), MultiStreamPlanning::kJoint);
  ASSERT_TRUE(set->RunToCompletion().ok());
  ASSERT_TRUE(set->Done());
  auto results = set->Results();
  ASSERT_EQ(results.size(), kStreams);
  size_t expected_segments = static_cast<size_t>(Hours(6) / 4.0);
  for (size_t v = 0; v < results.size(); ++v) {
    ASSERT_TRUE(results[v].ok()) << results[v].status().ToString();
    EXPECT_EQ(results[v]->segments, expected_segments);
    EXPECT_GT(results[v]->mean_quality, 0.0);
    EXPECT_LE(results[v]->mean_quality, 1.0);
    EXPECT_EQ(results[v]->overflow_events, 0u);
  }
}

TEST_F(StreamSetTest, JointStepwiseMatchesRunToCompletion) {
  // The manual Step() loop and the interval-at-a-time pooled loop must
  // produce identical streams (engines are independent between the
  // boundaries, which are solved identically in both drivers).
  auto stepped = StreamSet::Create(MakeJobs(), StreamSetOptions{});
  ASSERT_TRUE(stepped.ok());
  while (!stepped->Done()) ASSERT_TRUE(stepped->Step().ok());

  dag::ThreadPool pool(3);
  auto pooled = StreamSet::Create(MakeJobs(), StreamSetOptions{});
  ASSERT_TRUE(pooled.ok());
  ASSERT_TRUE(pooled->RunToCompletion(&pool).ok());

  auto a = stepped->Results();
  auto b = pooled->Results();
  ASSERT_EQ(a.size(), b.size());
  for (size_t v = 0; v < a.size(); ++v) {
    ASSERT_TRUE(a[v].ok() && b[v].ok());
    EXPECT_TRUE(EngineResultsIdentical(*a[v], *b[v])) << "stream " << v;
  }
}

TEST_F(StreamSetTest, JointPlanningRedistributesTheSharedBudget) {
  // Same resources overall: joint mode pools what independent mode splits.
  // The joint plans' expected quality sum can only match or beat the
  // independent plans' (the independent allocation is a feasible point of
  // the joint program). Compare the realized runs' planning behavior via
  // mid-run inspection of the installed plans.
  auto joint = StreamSet::Create(MakeJobs(), StreamSetOptions{});
  ASSERT_TRUE(joint.ok());
  StreamSetOptions iopts;
  iopts.planning = MultiStreamPlanning::kIndependent;
  auto indep = StreamSet::Create(MakeJobs(), iopts);
  ASSERT_TRUE(indep.ok());

  // Advance both one segment so the first boundary's plans are installed.
  ASSERT_TRUE(joint->Step().ok());
  ASSERT_TRUE(indep->Step().ok());
  double joint_expected = 0.0;
  double indep_expected = 0.0;
  for (size_t v = 0; v < kStreams; ++v) {
    ASSERT_NE(joint->engine(v)->current_plan(), nullptr);
    ASSERT_NE(indep->engine(v)->current_plan(), nullptr);
    joint_expected += joint->engine(v)->current_plan()->expected_quality;
    indep_expected += indep->engine(v)->current_plan()->expected_quality;
  }
  EXPECT_GE(joint_expected, indep_expected - 1e-9);
}

TEST_F(StreamSetTest, PerStreamErrorSemantics) {
  std::vector<StreamEngineJob> jobs = MakeJobs();
  jobs[1].workload = nullptr;  // poison the middle stream only
  auto set = StreamSet::Create(jobs, StreamSetOptions{});
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(set->RunToCompletion().ok());
  auto results = set->Results();
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[2].ok());

  // Same contract through the wrapper.
  auto wrapped = RunStreamEngines(jobs);
  EXPECT_TRUE(wrapped[0].ok());
  EXPECT_EQ(wrapped[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(wrapped[2].ok());
}

TEST_F(StreamSetTest, JointModeRequiresLockstepBoundaries) {
  std::vector<StreamEngineJob> jobs = MakeJobs();
  jobs[1].options.plan_interval = Hours(3);  // misaligned cadence
  auto set = StreamSet::Create(jobs, StreamSetOptions{});
  EXPECT_FALSE(set.ok());
  EXPECT_EQ(set.status().code(), StatusCode::kInvalidArgument);

  // Independent mode has no lockstep requirement.
  StreamSetOptions iopts;
  iopts.planning = MultiStreamPlanning::kIndependent;
  auto indep = StreamSet::Create(jobs, iopts);
  ASSERT_TRUE(indep.ok());
  ASSERT_TRUE(indep->RunToCompletion().ok());
  for (const auto& r : indep->Results()) EXPECT_TRUE(r.ok());
}

TEST_F(StreamSetTest, ExplicitSharedBudgetBindsThePlans) {
  // A tiny explicit shared budget forces every stream onto cheap plans;
  // a generous one lifts expected work. Both must complete.
  StreamSetOptions tight;
  tight.shared_budget_core_s_per_video_s = 0.5;
  auto tight_set = StreamSet::Create(MakeJobs(), tight);
  ASSERT_TRUE(tight_set.ok());
  ASSERT_TRUE(tight_set->RunToCompletion().ok());

  StreamSetOptions loose;
  loose.shared_budget_core_s_per_video_s = 100.0;
  auto loose_set = StreamSet::Create(MakeJobs(), loose);
  ASSERT_TRUE(loose_set.ok());
  ASSERT_TRUE(loose_set->RunToCompletion().ok());

  double tight_work = 0.0;
  double loose_work = 0.0;
  for (size_t v = 0; v < kStreams; ++v) {
    auto t = tight_set->Results()[v];
    auto l = loose_set->Results()[v];
    ASSERT_TRUE(t.ok() && l.ok());
    tight_work += t->work_core_seconds;
    loose_work += l->work_core_seconds;
  }
  EXPECT_LT(tight_work, loose_work);
}

TEST_F(StreamSetTest, JointModeMovesPooledCloudCreditsBetweenStreams) {
  // Stream 0 brings all the cloud money; stream 1 brings none (explicit
  // 0.0) but a tiny buffer that forces it onto the cloud when allowed.
  // Independently planned, stream 1 can never spend a cent; jointly
  // planned, the pooled credits follow the plans — and the total spend
  // stays capped by the pool (joint mode moves money, it never prints it).
  std::vector<StreamEngineJob> jobs = MakeJobs();
  jobs.resize(2);
  jobs[0].options.cloud_budget_usd_per_interval = 1.0;
  jobs[1].options.cloud_budget_usd_per_interval = 0.0;
  jobs[1].options.buffer_bytes = 64ull << 20;

  StreamSetOptions iopts;
  iopts.planning = MultiStreamPlanning::kIndependent;
  auto indep = StreamSet::Create(jobs, iopts);
  ASSERT_TRUE(indep.ok());
  ASSERT_TRUE(indep->RunToCompletion().ok());
  auto indep_results = indep->Results();
  ASSERT_TRUE(indep_results[0].ok() && indep_results[1].ok());
  EXPECT_DOUBLE_EQ(indep_results[1]->cloud_usd, 0.0);

  auto joint = StreamSet::Create(jobs, StreamSetOptions{});
  ASSERT_TRUE(joint.ok());
  ASSERT_TRUE(joint->RunToCompletion().ok());
  auto joint_results = joint->Results();
  ASSERT_TRUE(joint_results[0].ok() && joint_results[1].ok());
  EXPECT_GT(joint_results[1]->cloud_usd, 0.0);
  // 3 plan intervals (6 h / 2 h), $1 pooled per interval.
  double pooled_cap = 3.0;
  EXPECT_LE(joint_results[0]->cloud_usd + joint_results[1]->cloud_usd,
            pooled_cap + 1e-9);
}

TEST_F(StreamSetTest, InfeasibleMidRunBoundaryReusesThePreviousPlan) {
  // The first boundary solves under the default (generous) budget; then the
  // shared budget collapses below the cheapest feasible point. Later
  // boundaries must keep the last good plans — not panic down to the
  // all-cheapest fallback — and the run must still complete.
  auto set = StreamSet::Create(MakeJobs(), StreamSetOptions{});
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(set->Step().ok());  // installs the first boundary's plans
  std::vector<std::vector<double>> good_alphas;
  for (size_t v = 0; v < kStreams; ++v) {
    ASSERT_NE(set->engine(v)->current_plan(), nullptr);
    good_alphas.push_back(set->engine(v)->current_plan()->alpha.data());
  }

  set->set_shared_budget(1e-4);  // infeasible from the next boundary on
  ASSERT_TRUE(set->RunToCompletion().ok());
  ASSERT_TRUE(set->Done());
  for (size_t v = 0; v < kStreams; ++v) {
    ASSERT_TRUE(set->Results()[v].ok()) << "stream " << v;
    const KnobPlan* last = set->engine(v)->current_plan();
    ASSERT_NE(last, nullptr);
    // The final interval still runs the boundary-1 plan verbatim...
    EXPECT_EQ(last->alpha.data(), good_alphas[v]) << "stream " << v;
    // ...which is not the all-cheapest emergency plan.
    KnobPlan cheapest =
        set->engine(v)->FallbackPlan(set->engine(v)->boundary_forecast());
    EXPECT_NE(last->alpha.data(), cheapest.alpha.data()) << "stream " << v;
  }
}

TEST_F(StreamSetTest, FirstBoundaryInfeasibleFallsBackToAllCheapest) {
  // With no previously installed plan to reuse, an infeasible first
  // boundary degrades to each engine's all-cheapest fallback plan.
  StreamSetOptions opts;
  opts.shared_budget_core_s_per_video_s = 1e-4;
  auto set = StreamSet::Create(MakeJobs(), opts);
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(set->Step().ok());
  for (size_t v = 0; v < kStreams; ++v) {
    const KnobPlan* plan = set->engine(v)->current_plan();
    ASSERT_NE(plan, nullptr);
    KnobPlan cheapest =
        set->engine(v)->FallbackPlan(set->engine(v)->boundary_forecast());
    EXPECT_EQ(plan->alpha.data(), cheapest.alpha.data()) << "stream " << v;
  }
  ASSERT_TRUE(set->RunToCompletion().ok());
  for (const auto& r : set->Results()) ASSERT_TRUE(r.ok());
}

TEST_F(StreamSetTest, BoundaryLatenciesRecordedPerJointBoundary) {
  auto set = StreamSet::Create(MakeJobs(), StreamSetOptions{});
  ASSERT_TRUE(set.ok());
  EXPECT_TRUE(set->boundary_latencies_ms().empty());
  ASSERT_TRUE(set->RunToCompletion().ok());
  // 6 h duration / 2 h intervals = 3 joint boundaries.
  ASSERT_EQ(set->boundary_latencies_ms().size(), 3u);
  for (double ms : set->boundary_latencies_ms()) EXPECT_GE(ms, 0.0);

  // Independent mode has no joint boundaries to time.
  StreamSetOptions iopts;
  iopts.planning = MultiStreamPlanning::kIndependent;
  auto indep = StreamSet::Create(MakeJobs(), iopts);
  ASSERT_TRUE(indep.ok());
  ASSERT_TRUE(indep->RunToCompletion().ok());
  EXPECT_TRUE(indep->boundary_latencies_ms().empty());
}

TEST_F(StreamSetTest, RunUntilElapsedAdvancesTheSharedClock) {
  auto set = StreamSet::Create(MakeJobs(), StreamSetOptions{});
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(set->RunUntilElapsed(Hours(1)).ok());
  EXPECT_FALSE(set->Done());
  size_t expected = static_cast<size_t>(Hours(1) / 4.0);
  for (size_t v = 0; v < kStreams; ++v) {
    EXPECT_EQ(set->engine(v)->partial_result().segments, expected);
  }
  ASSERT_TRUE(set->RunToCompletion().ok());
  EXPECT_TRUE(set->Done());
}

}  // namespace
}  // namespace sky::core
