#include "video/stream_source.h"

#include <gtest/gtest.h>

#include "video/content_process.h"

namespace sky::video {
namespace {

DiurnalContentProcess MakeProcess(uint64_t seed = 61) {
  DiurnalContentProcess::Options opts;
  opts.horizon = Days(2);
  opts.seed = seed;
  return DiurnalContentProcess(opts);
}

TEST(StreamSourceTest, SegmentsTileTheTimeline) {
  DiurnalContentProcess content = MakeProcess();
  StreamSource source(&content, 4.0);
  for (int64_t i = 0; i < 100; ++i) {
    SegmentInfo seg = source.Segment(i);
    EXPECT_EQ(seg.index, i);
    EXPECT_DOUBLE_EQ(seg.start, 4.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(seg.duration_s, 4.0);
  }
  EXPECT_EQ(source.NumSegments(Days(1)), 21600);
}

TEST(StreamSourceTest, BytesTrackContentDensity) {
  DiurnalContentProcess content = MakeProcess();
  StreamSource source(&content, 4.0);
  // Busiest afternoon segment must carry more bytes than a 3 AM segment.
  int64_t night = static_cast<int64_t>(Hours(3) / 4.0);
  int64_t day = static_cast<int64_t>(Hours(17) / 4.0);
  EXPECT_GT(source.Segment(day).bytes, source.Segment(night).bytes);
  // Bytes stay within the codec model's bounds.
  for (int64_t i = 0; i < 2000; i += 37) {
    SegmentInfo seg = source.Segment(i);
    EXPECT_GE(seg.bytes, 4.0 * EstimateStreamBytesPerSecond(0.0) * 0.99);
    EXPECT_LE(seg.bytes, 4.0 * EstimateStreamBytesPerSecond(1.0) * 1.01);
  }
}

TEST(StreamSourceTest, MultiStreamContentScalesBytes) {
  TwitchContentProcess::Options opts;
  opts.horizon = Days(2);
  opts.seed = 62;
  TwitchContentProcess twitch(opts);
  StreamSource source(&twitch, 7.0);
  // Find a spike segment and a quiet segment; bytes must scale with the
  // live stream count.
  uint64_t max_bytes = 0, min_bytes = ~0ull;
  for (int64_t i = 0; i < source.NumSegments(Days(1)); i += 5) {
    uint64_t b = source.Segment(i).bytes;
    max_bytes = std::max(max_bytes, b);
    min_bytes = std::min(min_bytes, b);
  }
  EXPECT_GT(max_bytes, 3 * min_bytes);
}

TEST(StreamSourceTest, ContentSampledAtMidpoint) {
  DiurnalContentProcess content = MakeProcess();
  StreamSource source(&content, 10.0);
  SegmentInfo seg = source.Segment(100);
  ContentState expected = content.At(1005.0);
  EXPECT_DOUBLE_EQ(seg.content.density, expected.density);
}

}  // namespace
}  // namespace sky::video
