// Cross-module integration tests: the complete offline -> online pipeline on
// real workloads, checking the end-to-end properties the paper's headline
// claims rest on (throughput guarantee, content-adaptivity, cost savings).

#include <gtest/gtest.h>

#include "baselines/static_baseline.h"
#include "core/engine.h"
#include "core/offline.h"
#include "workloads/covid.h"
#include "workloads/mosei.h"

namespace sky {
namespace {

using core::EngineOptions;
using core::IngestionEngine;
using core::OfflineModel;
using core::OfflineOptions;

OfflineOptions CovidOffline() {
  OfflineOptions opts;
  opts.segment_seconds = 4.0;
  opts.train_horizon = Days(8);
  opts.num_categories = 3;
  opts.forecaster.input_span = Days(2);
  opts.forecaster.planned_interval = Days(2);
  return opts;
}

TEST(IntegrationTest, CovidEndToEndOnSmallServer) {
  workloads::CovidWorkload covid;
  sim::ClusterSpec cluster;
  cluster.cores = 4;
  sim::CostModel cost_model(1.8);
  auto model = core::RunOfflinePhase(covid, cluster, cost_model,
                                     CovidOffline());
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  EngineOptions opts;
  opts.duration = Days(2);
  opts.plan_interval = Days(2);
  opts.cloud_budget_usd_per_interval = 3.0;
  IngestionEngine engine(&covid, &*model, cluster, &cost_model, opts);
  auto result = engine.Run(Days(8));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Throughput guarantee: the buffer never overflowed.
  EXPECT_EQ(result->overflow_events, 0u);
  // Content adaptivity: thousands of knob switches over 2 days (§5.3
  // reports 4500 over 24 h on the EV workload).
  EXPECT_GT(result->switch_count, 1000u);

  // Cost claim: Skyscraper on 4 cores beats the best real-time static
  // config on the same 4 cores by a clear margin.
  auto static_result = baselines::BestStaticBaseline(
      covid, cluster, cost_model, 4.0, Days(2), Days(8));
  ASSERT_TRUE(static_result.ok());
  EXPECT_GT(result->total_quality, 1.1 * static_result->total_quality);
}

TEST(IntegrationTest, CovidQualityImprovesWithCores) {
  workloads::CovidWorkload covid;
  sim::CostModel cost_model(1.8);
  double prev_quality = 0.0;
  for (int cores : {4, 16, 60}) {
    sim::ClusterSpec cluster;
    cluster.cores = cores;
    auto model = core::RunOfflinePhase(covid, cluster, cost_model,
                                       CovidOffline());
    ASSERT_TRUE(model.ok());
    EngineOptions opts;
    opts.duration = Days(1);
    opts.plan_interval = Days(1);
    IngestionEngine engine(&covid, &*model, cluster, &cost_model, opts);
    auto result = engine.Run(Days(8));
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->mean_quality, prev_quality - 0.02);
    prev_quality = result->mean_quality;
  }
  EXPECT_GT(prev_quality, 0.9);  // 60 cores: near-perfect quality
}

TEST(IntegrationTest, MoseiLongNeedsCloudNotJustBuffer) {
  // §5.4: for MOSEI-LONG, buffering alone cannot absorb the plateau, cloud
  // bursting can. Compare only-buffering vs buffering+cloud on mid hardware.
  workloads::MoseiWorkload mosei(workloads::MoseiWorkload::SpikeKind::kLong);
  sim::ClusterSpec cluster;
  cluster.cores = 16;
  sim::CostModel cost_model(1.8);
  OfflineOptions offline;
  offline.segment_seconds = 7.0;
  offline.train_horizon = Days(6);
  offline.num_categories = 5;
  offline.forecaster.input_span = Days(1);
  offline.forecaster.planned_interval = Days(1);
  auto model = core::RunOfflinePhase(mosei, cluster, cost_model, offline);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  EngineOptions buffer_only;
  buffer_only.duration = Days(2);
  buffer_only.plan_interval = Days(1);
  buffer_only.enable_cloud = false;
  IngestionEngine e1(&mosei, &*model, cluster, &cost_model, buffer_only);
  auto r1 = e1.Run(Days(6));
  ASSERT_TRUE(r1.ok());

  EngineOptions with_cloud = buffer_only;
  with_cloud.enable_cloud = true;
  with_cloud.cloud_budget_usd_per_interval = 10.0;
  IngestionEngine e2(&mosei, &*model, cluster, &cost_model, with_cloud);
  auto r2 = e2.Run(Days(6));
  ASSERT_TRUE(r2.ok());

  EXPECT_GT(r2->total_quality, r1->total_quality);
  EXPECT_GT(r2->cloud_usd, 0.0);
  EXPECT_EQ(r1->overflow_events, 0u);
  EXPECT_EQ(r2->overflow_events, 0u);
}

TEST(IntegrationTest, OfflineStepRuntimesRecorded) {
  workloads::CovidWorkload covid;
  sim::ClusterSpec cluster;
  cluster.cores = 4;
  sim::CostModel cost_model(1.8);
  auto model =
      core::RunOfflinePhase(covid, cluster, cost_model, CovidOffline());
  ASSERT_TRUE(model.ok());
  const core::OfflineStepRuntimes& rt = model->step_runtimes;
  EXPECT_GT(rt.filter_configs_s, 0.0);
  EXPECT_GT(rt.filter_placements_s, 0.0);
  EXPECT_GT(rt.content_categories_s, 0.0);
  EXPECT_GT(rt.forecast_training_data_s, 0.0);
  EXPECT_GT(rt.forecast_training_s, 0.0);
}

}  // namespace
}  // namespace sky
