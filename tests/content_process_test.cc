#include "video/content_process.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace sky::video {
namespace {

TEST(SmoothNoiseTest, DeterministicAndBounded) {
  SmoothNoise a(0.5, 30.0, Hours(2), 7);
  SmoothNoise b(0.5, 30.0, Hours(2), 7);
  for (double t = 0; t < Hours(2); t += 17.0) {
    EXPECT_DOUBLE_EQ(a.At(t), b.At(t));
    EXPECT_LE(std::abs(a.At(t)), 0.5 + 1e-12);
  }
}

TEST(SmoothNoiseTest, ContinuousBetweenKnots) {
  SmoothNoise n(1.0, 100.0, Hours(1), 8);
  for (double t = 0; t < Minutes(30); t += 1.0) {
    EXPECT_LE(std::abs(n.At(t + 1.0) - n.At(t)), 0.2);
  }
}

TEST(DiurnalTest, BaseCurveShapes) {
  using P = DiurnalContentProcess::Profile;
  // Traffic: rush hours clearly busier than 3 AM.
  EXPECT_GT(DiurnalContentProcess::BaseDensity(P::kTrafficIntersection, 8.0),
            DiurnalContentProcess::BaseDensity(P::kTrafficIntersection, 3.0) +
                0.3);
  EXPECT_GT(DiurnalContentProcess::BaseDensity(P::kTrafficIntersection, 17.5),
            0.5);
  // Shopping street: single mid-afternoon peak.
  EXPECT_GT(DiurnalContentProcess::BaseDensity(P::kShoppingStreet, 15.5),
            DiurnalContentProcess::BaseDensity(P::kShoppingStreet, 5.0) + 0.4);
}

TEST(DiurnalTest, StatesAreValidAndDeterministic) {
  DiurnalContentProcess::Options opts;
  opts.horizon = Days(3);
  opts.seed = 41;
  DiurnalContentProcess a(opts), b(opts);
  for (double t = 0; t < Days(3); t += 631.0) {
    ContentState sa = a.At(t);
    ContentState sb = b.At(t);
    EXPECT_DOUBLE_EQ(sa.density, sb.density);
    EXPECT_GE(sa.density, 0.0);
    EXPECT_LE(sa.density, 1.0);
    EXPECT_GE(sa.occlusion, 0.0);
    EXPECT_LE(sa.occlusion, 1.0);
    EXPECT_GE(sa.lighting, 0.0);
    EXPECT_LE(sa.lighting, 1.0);
    EXPECT_DOUBLE_EQ(sa.stream_count, 1.0);
  }
}

TEST(DiurnalTest, NightIsQuieterThanDay) {
  DiurnalContentProcess::Options opts;
  opts.horizon = Days(4);
  opts.seed = 42;
  DiurnalContentProcess p(opts);
  double night = 0.0, day = 0.0;
  int count = 0;
  for (int d = 0; d < 4; ++d) {
    for (int m = 0; m < 60; m += 10) {
      night += p.At(Days(d) + Hours(3) + Minutes(m)).density;
      day += p.At(Days(d) + Hours(17) + Minutes(m)).density;
      ++count;
    }
  }
  EXPECT_GT(day / count, night / count + 0.25);
}

TEST(DiurnalTest, LightingFollowsSun) {
  DiurnalContentProcess::Options opts;
  opts.seed = 43;
  DiurnalContentProcess p(opts);
  EXPECT_GT(p.At(Hours(12)).lighting, 0.9);
  EXPECT_LT(p.At(Hours(2)).lighting, 0.3);
}

TEST(DiurnalTest, OcclusionCorrelatesWithDensity) {
  DiurnalContentProcess::Options opts;
  opts.horizon = Days(2);
  opts.seed = 44;
  DiurnalContentProcess p(opts);
  // Average occlusion in the busiest hour must exceed the quietest hour's.
  double busy = 0.0, quiet = 0.0;
  for (int m = 0; m < 60; ++m) {
    busy += p.At(Hours(17) + Minutes(m)).occlusion;
    quiet += p.At(Hours(3) + Minutes(m)).occlusion;
  }
  EXPECT_GT(busy, quiet);
}

TEST(DiurnalTest, ContentVariesOnSwitcherTimescale) {
  // §5.3: content categories change every ~30-45 s on average. The latent
  // state must show meaningful variation across 30 s steps.
  DiurnalContentProcess::Options opts;
  opts.horizon = Days(1);
  opts.seed = 45;
  DiurnalContentProcess p(opts);
  sky::OnlineStats deltas;
  for (double t = Hours(10); t < Hours(14); t += 30.0) {
    deltas.Add(std::abs(p.At(t + 30.0).density - p.At(t).density));
  }
  EXPECT_GT(deltas.mean(), 0.01);
}

TEST(TwitchTest, HighSpikesReachMaxStreams) {
  TwitchContentProcess::Options opts;
  opts.spike_kind = TwitchContentProcess::SpikeKind::kHigh;
  opts.horizon = Days(3);
  opts.seed = 46;
  TwitchContentProcess p(opts);
  double peak = 0.0;
  for (double t = 0; t < Days(2); t += 60.0) {
    peak = std::max(peak, p.At(t).stream_count);
  }
  EXPECT_GT(peak, 0.95 * opts.max_streams);
}

TEST(TwitchTest, LongSpikeIsSustained) {
  TwitchContentProcess::Options opts;
  opts.spike_kind = TwitchContentProcess::SpikeKind::kLong;
  opts.horizon = Days(2);
  opts.seed = 47;
  TwitchContentProcess p(opts);
  // Count how much of day 0 sits above 50% of max: the long plateau spans
  // ~8 h and the diurnal base stays below that level.
  double above = 0.0;
  for (double t = 0; t < Days(1); t += 60.0) {
    if (p.At(t).stream_count > 0.5 * opts.max_streams) above += 60.0;
  }
  EXPECT_GT(above, Hours(5));
  EXPECT_LT(above, Hours(12));
}

TEST(TwitchTest, StatesValid) {
  TwitchContentProcess::Options opts;
  opts.seed = 48;
  TwitchContentProcess p(opts);
  for (double t = 0; t < Days(1); t += 313.0) {
    ContentState s = p.At(t);
    EXPECT_GE(s.stream_count, 0.0);
    EXPECT_LE(s.stream_count, opts.max_streams);
    EXPECT_GE(s.difficulty, 0.0);
    EXPECT_LE(s.difficulty, 1.0);
  }
}

TEST(ContentProcessTest, HorizonClamps) {
  DiurnalContentProcess::Options opts;
  opts.horizon = Days(1);
  opts.seed = 49;
  DiurnalContentProcess p(opts);
  ContentState end = p.At(Days(1));
  ContentState beyond = p.At(Days(5));
  EXPECT_DOUBLE_EQ(end.density, beyond.density);
}

}  // namespace
}  // namespace sky::video
