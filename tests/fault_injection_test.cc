// The deterministic fault-injection subsystem (sim::FaultInjector) and the
// engine's fault-awareness. Gates:
//  - injector queries are pure functions of (plan, seed, t): same seed =>
//    identical answers on every call, thread count and replay; different
//    seed => a different transient-failure pattern;
//  - one-shot events (UdfThrow, Crash) fire exactly once across any number
//    of queries — the consumed flag is injector state, not engine state;
//  - capped exponential backoff arithmetic;
//  - an engine with a null injector and an engine with an EMPTY injector are
//    bitwise identical (the fault-free path is exactly the pre-fault code);
//  - transient cloud failures retry (and, past the budget, degrade on-prem)
//    with every failure visible in the result counters;
//  - a full-run cloud outage spends zero cloud dollars and counts its
//    segments/intervals; stall windows count their segments;
//  - an armed UdfThrow escapes Step() as the workload exception it models.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/engine.h"
#include "core/offline.h"
#include "sim/faults.h"
#include "workloads/ev_counting.h"

namespace sky::sim {
namespace {

using core::EngineOptions;
using core::EngineResult;
using core::EngineResultsIdentical;
using core::IngestionEngine;
using core::OfflineModel;

TEST(FaultInjectorTest, QueriesAreDeterministicAndSeedSensitive) {
  FaultPlan plan;
  plan.AddTransientCloudFailures(100.0, 400.0, 0.5);
  plan.AddCloudLatency(200.0, 100.0, 3.0);
  FaultInjector a(plan, 7u);
  FaultInjector b(plan, 7u);
  FaultInjector c(plan, 8u);

  bool seeds_differ = false;
  for (int i = 0; i < 100; ++i) {
    double t = 100.0 + 4.0 * i;
    EXPECT_EQ(a.CloudUploadFailuresAt(t), b.CloudUploadFailuresAt(t));
    // Repeat queries at the same t never change the answer (pure function).
    EXPECT_EQ(a.CloudUploadFailuresAt(t), a.CloudUploadFailuresAt(t));
    EXPECT_EQ(a.CloudLatencyMultiplierAt(t), b.CloudLatencyMultiplierAt(t));
    if (a.CloudUploadFailuresAt(t) != c.CloudUploadFailuresAt(t)) {
      seeds_differ = true;
    }
  }
  EXPECT_TRUE(seeds_differ);
}

TEST(FaultInjectorTest, WindowsAreExactlyNeutralOutside) {
  FaultPlan plan;
  plan.AddCloudOutage(100.0, 50.0);
  plan.AddCloudLatency(300.0, 50.0, 2.5);
  plan.AddUdfStall(500.0, 50.0, 4.0);
  plan.AddTransientCloudFailures(700.0, 50.0, 1.0);
  FaultInjector f(plan, 1u);

  // Inside.
  EXPECT_TRUE(f.CloudOutageAt(100.0));
  EXPECT_TRUE(f.CloudOutageAt(149.0));
  EXPECT_EQ(f.CloudLatencyMultiplierAt(310.0), 2.5);
  EXPECT_EQ(f.UdfStallMultiplierAt(510.0), 4.0);
  EXPECT_GT(f.CloudUploadFailuresAt(710.0), 0u);
  // Outside: bit-exact neutral values, not merely "close to 1".
  EXPECT_FALSE(f.CloudOutageAt(99.0));
  EXPECT_FALSE(f.CloudOutageAt(150.0));  // half-open window [at, at+duration)
  EXPECT_EQ(f.CloudLatencyMultiplierAt(299.0), 1.0);
  EXPECT_EQ(f.CloudLatencyMultiplierAt(350.0), 1.0);
  EXPECT_EQ(f.UdfStallMultiplierAt(499.0), 1.0);
  EXPECT_EQ(f.CloudUploadFailuresAt(699.0), 0u);
  EXPECT_EQ(f.CloudUploadFailuresAt(750.0), 0u);
}

TEST(FaultInjectorTest, OneShotEventsConsumeExactlyOnce) {
  FaultPlan plan;
  plan.AddUdfThrow(100.0);
  plan.AddCrash(200.0);
  FaultInjector f(plan, 3u);

  EXPECT_FALSE(f.ConsumeUdfThrowAt(99.0));  // not due yet
  EXPECT_TRUE(f.ConsumeUdfThrowAt(100.0));
  EXPECT_FALSE(f.ConsumeUdfThrowAt(100.0));  // consumed
  EXPECT_FALSE(f.ConsumeUdfThrowAt(500.0));

  EXPECT_FALSE(f.ConsumeCrashAt(150.0));
  EXPECT_TRUE(f.ConsumeCrashAt(250.0));  // "t >= at" semantics: still due
  EXPECT_FALSE(f.ConsumeCrashAt(250.0));
  EXPECT_EQ(f.consumed_events(), 2u);
}

TEST(FaultInjectorTest, BackoffIsCappedExponential) {
  RetryPolicy retry;
  retry.max_attempts = 5;
  retry.backoff_base_s = 0.5;
  retry.backoff_cap_s = 8.0;
  FaultInjector f(FaultPlan{}, 1u, retry);

  EXPECT_EQ(f.BackoffDelaySeconds(0), 0.0);
  EXPECT_EQ(f.BackoffDelaySeconds(1), 0.5);
  EXPECT_EQ(f.BackoffDelaySeconds(2), 0.5 + 1.0);
  EXPECT_EQ(f.BackoffDelaySeconds(3), 0.5 + 1.0 + 2.0);
  EXPECT_EQ(f.BackoffDelaySeconds(4), 0.5 + 1.0 + 2.0 + 4.0);
  // The fifth attempt would wait 8.0 exactly (the cap); a sixth caps too.
  EXPECT_EQ(f.BackoffDelaySeconds(5), 0.5 + 1.0 + 2.0 + 4.0 + 8.0);
  EXPECT_EQ(f.BackoffDelaySeconds(6), 0.5 + 1.0 + 2.0 + 4.0 + 8.0 + 8.0);
}

// --- Engine-level behavior, on a small fitted model ---

class FaultEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_.cores = 4;
    cost_model_ = new sim::CostModel(1.8);
    workload_ = new workloads::EvCountingWorkload(8400);
    core::OfflineOptions opts;
    opts.segment_seconds = 4.0;
    opts.train_horizon = Days(3);
    opts.num_categories = 3;
    opts.train_forecaster = false;
    auto model = core::RunOfflinePhase(*workload_, cluster_, *cost_model_,
                                       opts);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new OfflineModel(std::move(*model));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete workload_;
    delete cost_model_;
  }

  static EngineOptions BaseOptions() {
    EngineOptions opts;
    opts.duration = Hours(6);
    opts.plan_interval = Hours(2);
    opts.cloud_budget_usd_per_interval = 1.0;
    opts.record_trace = true;
    opts.trace_resolution_s = 300.0;
    return opts;
  }

  static EngineResult MustRun(const EngineOptions& opts) {
    IngestionEngine engine(workload_, model_, cluster_, cost_model_, opts);
    auto result = engine.Run(Days(3));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  static workloads::EvCountingWorkload* workload_;
  static OfflineModel* model_;
  static sim::ClusterSpec cluster_;
  static sim::CostModel* cost_model_;
};

workloads::EvCountingWorkload* FaultEngineTest::workload_ = nullptr;
OfflineModel* FaultEngineTest::model_ = nullptr;
sim::ClusterSpec FaultEngineTest::cluster_;
sim::CostModel* FaultEngineTest::cost_model_ = nullptr;

TEST_F(FaultEngineTest, EmptyInjectorIsBitwiseIdenticalToNoInjector) {
  EngineResult bare = MustRun(BaseOptions());
  // The fixture must actually burst to the cloud, or the cloud-fault tests
  // below would pass vacuously.
  ASSERT_GT(bare.cloud_usd, 0.0);
  ASSERT_EQ(bare.cloud_failures, 0u);

  FaultInjector empty(FaultPlan{}, 99u);
  EngineOptions opts = BaseOptions();
  opts.fault_injector = &empty;
  EngineResult with_empty = MustRun(opts);
  EXPECT_TRUE(EngineResultsIdentical(bare, with_empty));
}

TEST_F(FaultEngineTest, CertainTransientFailuresExhaustRetriesAndDegrade) {
  FaultPlan plan;
  // p = 1.0 over the whole run: every cloud upload fails through the entire
  // retry budget, so every cloud-placed segment degrades on-prem.
  plan.AddTransientCloudFailures(Days(3), Hours(6), 1.0);
  FaultInjector f(plan, 5u);
  EngineOptions opts = BaseOptions();
  opts.fault_injector = &f;
  EngineResult faulted = MustRun(opts);

  EXPECT_GT(faulted.cloud_failures, 0u);
  EXPECT_GT(faulted.cloud_giveups, 0u);
  EXPECT_EQ(faulted.cloud_retries, 0u);  // nothing ever succeeded on retry
  EXPECT_GT(faulted.fault_backoff_s, 0.0);
  EXPECT_EQ(faulted.cloud_usd, 0.0);  // degraded placements spend nothing
  EXPECT_EQ(faulted.segments, MustRun(BaseOptions()).segments);
}

TEST_F(FaultEngineTest, IntermittentFailuresRetryAndRecover) {
  FaultPlan plan;
  plan.AddTransientCloudFailures(Days(3), Hours(6), 0.4);
  FaultInjector f(plan, 5u);
  EngineOptions opts = BaseOptions();
  opts.fault_injector = &f;
  EngineResult faulted = MustRun(opts);

  EXPECT_GT(faulted.cloud_failures, 0u);
  EXPECT_GT(faulted.cloud_retries, 0u);  // some uploads succeed on retry
  EXPECT_GT(faulted.fault_backoff_s, 0.0);
  EXPECT_GT(faulted.cloud_usd, 0.0);  // bursting survives the flakiness
}

TEST_F(FaultEngineTest, FullRunOutageForcesOnPremAndCounts) {
  FaultPlan plan;
  plan.AddCloudOutage(Days(3), Hours(6));
  FaultInjector f(plan, 5u);
  EngineOptions opts = BaseOptions();
  opts.fault_injector = &f;
  EngineResult faulted = MustRun(opts);

  EXPECT_EQ(faulted.cloud_usd, 0.0);
  EXPECT_GT(faulted.outage_segments, 0u);
  EXPECT_GT(faulted.outage_intervals, 0u);
  EXPECT_EQ(faulted.cloud_failures, 0u);  // nothing was even attempted
  EXPECT_EQ(faulted.segments, MustRun(BaseOptions()).segments);
}

TEST_F(FaultEngineTest, OutageWindowIsExactlyBounded) {
  // Outage covers only the middle plan interval. Degradation must cover the
  // window EXACTLY — one boundary planned on-prem-only, 2 h / 4 s segments
  // forced local — and stop the moment it closes: cloud-allowed stepping
  // resumes for the remaining interval (the resume-bursting half of the
  // graceful-degradation contract; whether the switcher then chooses to
  // spend depends on the plan, which legitimately diverges after a
  // degraded interval).
  FaultPlan plan;
  plan.AddCloudOutage(Days(3) + Hours(2), Hours(2));
  FaultInjector f(plan, 5u);
  EngineOptions opts = BaseOptions();
  opts.fault_injector = &f;
  EngineResult faulted = MustRun(opts);

  EXPECT_EQ(faulted.outage_segments, static_cast<size_t>(Hours(2) / 4.0));
  EXPECT_EQ(faulted.outage_intervals, 1u);  // exactly the middle boundary
  EXPECT_EQ(faulted.cloud_failures, 0u);    // an outage is not a flaky link
  EXPECT_EQ(faulted.segments, MustRun(BaseOptions()).segments);
}

TEST_F(FaultEngineTest, StallWindowSlowsSegmentsAndCounts) {
  FaultPlan plan;
  plan.AddUdfStall(Days(3) + Hours(1), Hours(1), 3.0);
  FaultInjector f(plan, 5u);
  EngineOptions opts = BaseOptions();
  opts.fault_injector = &f;
  EngineResult faulted = MustRun(opts);

  EXPECT_GT(faulted.udf_stall_segments, 0u);
  EXPECT_EQ(faulted.segments, MustRun(BaseOptions()).segments);
}

TEST_F(FaultEngineTest, UdfThrowEscapesStepAsTheModeledException) {
  FaultPlan plan;
  plan.AddUdfThrow(Days(3) + Hours(1));
  FaultInjector f(plan, 5u);
  EngineOptions opts = BaseOptions();
  opts.fault_injector = &f;
  IngestionEngine engine(workload_, model_, cluster_, cost_model_, opts);
  EXPECT_THROW(
      {
        ASSERT_TRUE(engine.Start(Days(3)).ok());
        while (!engine.Done()) {
          Status stepped = engine.Step();
          ASSERT_TRUE(stepped.ok()) << stepped.ToString();
        }
      },
      std::runtime_error);
  // The one-shot is consumed: driving the SAME engine on resumes past the
  // fault point and completes.
  while (!engine.Done()) {
    Status stepped = engine.Step();
    ASSERT_TRUE(stepped.ok()) << stepped.ToString();
  }
  EXPECT_TRUE(engine.Done());
}

}  // namespace
}  // namespace sky::sim
