// Steady-state allocation audit for the ML inference and online-update
// paths on the engine plan boundary (the PR-2 discipline, extended into the
// net itself): after warm-up, FeaturesFromHistoryInto + ForecastInto +
// OnlineUpdate — the exact per-plan-boundary forecaster work — must perform
// zero heap allocations. Verified with a counting global operator new, so a
// regression is a test failure rather than a code-review hope.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/forecaster.h"
#include "ml/nn.h"
#include "util/rng.h"

namespace {

std::atomic<long> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sky::core {
namespace {

std::vector<size_t> SyntheticCategories(double segment_seconds, double days,
                                        uint64_t seed) {
  Rng rng(seed);
  size_t n = static_cast<size_t>(Days(days) / segment_seconds);
  std::vector<size_t> seq(n, 0);
  for (size_t i = 0; i < n; ++i) {
    double hour = HourOfDay(static_cast<double>(i) * segment_seconds);
    seq[i] = (hour > 8 && hour < 20) ? 1 : 0;
    if (rng.Bernoulli(0.05)) seq[i] = 2;
  }
  return seq;
}

ForecasterOptions FastOptions() {
  ForecasterOptions opts;
  opts.input_span = Days(1);
  opts.input_splits = 4;
  opts.planned_interval = Days(1);
  opts.training_stride = Minutes(30);
  opts.train_options.epochs = 10;
  return opts;
}

TEST(AllocSteadyStateTest, ForecasterPlanBoundaryPathsAllocateNothing) {
  std::vector<size_t> seq = SyntheticCategories(60.0, 6, 21);
  auto trained = Forecaster::Train(seq, 60.0, 3, FastOptions());
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  Forecaster forecaster = std::move(*trained);

  std::vector<double> features;
  std::vector<double> forecast;
  std::vector<double> realized = {0.2, 0.5, 0.3};

  // Warm-up: first calls size the reusable scratch buffers.
  for (int i = 0; i < 3; ++i) {
    forecaster.FeaturesFromHistoryInto(seq, 60.0, &features);
    forecaster.ForecastInto(features, &forecast);
    forecaster.OnlineUpdate(features, realized, 1e-3);
  }

  long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 200; ++i) {
    forecaster.FeaturesFromHistoryInto(seq, 60.0, &features);
    forecaster.ForecastInto(features, &forecast);
    forecaster.OnlineUpdate(features, realized, 1e-3);
  }
  long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "forecaster steady state allocated " << (after - before) << " times";
  // The outputs stayed live and correct.
  ASSERT_EQ(forecast.size(), 3u);
  double sum = forecast[0] + forecast[1] + forecast[2];
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(AllocSteadyStateTest, F32ForecastWithOnlineUpdatesAllocatesNothing) {
  // The f32 path's extra moving part: every OnlineUpdate invalidates the f32
  // weight mirror, so each loop iteration pays a full mirror refresh before
  // the f32 forward. Both must reuse their preallocated buffers — the
  // refresh rounds in place, it never reallocates.
  std::vector<size_t> seq = SyntheticCategories(60.0, 6, 23);
  auto trained = Forecaster::Train(seq, 60.0, 3, FastOptions());
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  Forecaster forecaster = std::move(*trained);

  std::vector<double> features;
  std::vector<double> forecast;
  std::vector<double> realized = {0.2, 0.5, 0.3};

  for (int i = 0; i < 3; ++i) {
    forecaster.FeaturesFromHistoryInto(seq, 60.0, &features);
    forecaster.ForecastInto(features, ml::Precision::kF32, &forecast);
    forecaster.OnlineUpdate(features, realized, 1e-3);
  }

  long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 200; ++i) {
    forecaster.FeaturesFromHistoryInto(seq, 60.0, &features);
    forecaster.ForecastInto(features, ml::Precision::kF32, &forecast);
    forecaster.OnlineUpdate(features, realized, 1e-3);
  }
  long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "f32 forecast steady state allocated " << (after - before)
      << " times";
  ASSERT_EQ(forecast.size(), 3u);
  double sum = forecast[0] + forecast[1] + forecast[2];
  EXPECT_NEAR(sum, 1.0, 1e-6);  // f32 softmax normalizes to f32 accuracy
}

TEST(AllocSteadyStateTest, NetPredictIntoAllocatesNothing) {
  Rng rng(9);
  ml::FeedForwardNet net(6, {16, 8}, 3, ml::Activation::kSoftmax, &rng);
  std::vector<double> x = {0.1, 0.2, -0.3, 0.4, -0.5, 0.6};
  ml::PredictScratch scratch;
  std::vector<double> out;
  for (int i = 0; i < 3; ++i) net.PredictInto(x, &scratch, &out);

  long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 500; ++i) net.PredictInto(x, &scratch, &out);
  long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0);
}

}  // namespace
}  // namespace sky::core
