#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sky::lp {
namespace {

TEST(SimplexTest, SimpleTwoVariableMax) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj=36.
  LinearProgram lp;
  lp.objective = {3, 5};
  lp.a_ub = {{1, 0}, {0, 2}, {3, 2}};
  lp.b_ub = {4, 12, 18};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 36.0, 1e-6);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 6.0, 1e-6);
}

TEST(SimplexTest, EqualityConstraints) {
  // max x + 2y s.t. x + y = 1 -> y = 1, obj = 2.
  LinearProgram lp;
  lp.objective = {1, 2};
  lp.a_eq = {{1, 1}};
  lp.b_eq = {1};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 2.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 1.0, 1e-6);
}

TEST(SimplexTest, IterationLimitSurfacedNotSilentlyOptimal) {
  // max x + y s.t. x <= 1, y <= 1 needs two pivots. One iteration must
  // report kIterationLimit with a feasible best-effort point, never claim
  // kOptimal.
  LinearProgram lp;
  lp.objective = {1, 1};
  lp.a_ub = {{1, 0}, {0, 1}};
  lp.b_ub = {1, 1};
  LpOptions strangled;
  strangled.max_iterations = 1;
  auto limited = SolveLp(lp, strangled);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->status, LpStatus::kIterationLimit);
  ASSERT_EQ(limited->x.size(), 2u);
  EXPECT_LE(limited->x[0], 1.0 + 1e-9);  // best-effort point is feasible
  EXPECT_LE(limited->x[1], 1.0 + 1e-9);
  EXPECT_LT(limited->objective_value, 2.0 - 1e-9);  // and not yet optimal

  auto full = SolveLp(lp);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->status, LpStatus::kOptimal);
  EXPECT_NEAR(full->objective_value, 2.0, 1e-6);
}

TEST(SimplexTest, Phase1IterationLimitLeavesFeasibilityUndetermined) {
  // Three disjoint equality rows need three phase-1 pivots; after one the
  // artificials still carry mass, so feasibility is undetermined — the
  // solver must report kIterationLimit with no point, not kInfeasible and
  // not a fabricated optimum.
  LinearProgram lp;
  lp.objective = {1, 1, 1};
  lp.a_eq = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  lp.b_eq = {1, 1, 1};
  LpOptions strangled;
  strangled.max_iterations = 1;
  auto limited = SolveLp(lp, strangled);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->status, LpStatus::kIterationLimit);
  EXPECT_TRUE(limited->x.empty());

  auto full = SolveLp(lp);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->status, LpStatus::kOptimal);
  EXPECT_NEAR(full->objective_value, 3.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= 1 and x = 2 is infeasible.
  LinearProgram lp;
  lp.objective = {1};
  lp.a_ub = {{1}};
  lp.b_ub = {1};
  lp.a_eq = {{1}};
  lp.b_eq = {2};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // max x with only y bounded.
  LinearProgram lp;
  lp.objective = {1, 0};
  lp.a_ub = {{0, 1}};
  lp.b_ub = {1};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, LpStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsHandled) {
  // max -x s.t. -x <= -2  (i.e. x >= 2): optimum x = 2.
  LinearProgram lp;
  lp.objective = {-1};
  lp.a_ub = {{-1}};
  lp.b_ub = {-2};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-6);
}

TEST(SimplexTest, RejectsMalformedShapes) {
  LinearProgram lp;
  lp.objective = {1, 2};
  lp.a_ub = {{1}};  // wrong width
  lp.b_ub = {1};
  EXPECT_FALSE(SolveLp(lp).ok());
  LinearProgram empty;
  EXPECT_FALSE(SolveLp(empty).ok());
}

TEST(SimplexTest, NoConstraintsZeroOrUnbounded) {
  LinearProgram lp;
  lp.objective = {-1, -2};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 0.0, 1e-9);

  lp.objective = {1, -2};
  auto unbounded = SolveLp(lp);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_EQ(unbounded->status, LpStatus::kUnbounded);
}

TEST(SimplexTest, KnobPlannerShapedProgram) {
  // 2 categories x 3 configs, exactly the planner's LP structure.
  // Qualities: cat0 {0.5, 0.8, 1.0}, cat1 {0.2, 0.6, 0.95};
  // costs {1, 4, 10}; forecast {0.7, 0.3}; budget 4.
  LinearProgram lp;
  double r[2] = {0.7, 0.3};
  double qual[2][3] = {{0.5, 0.8, 1.0}, {0.2, 0.6, 0.95}};
  double cost[3] = {1, 4, 10};
  lp.objective.assign(6, 0.0);
  std::vector<double> budget_row(6, 0.0);
  for (int c = 0; c < 2; ++c) {
    for (int k = 0; k < 3; ++k) {
      lp.objective[c * 3 + k] = r[c] * qual[c][k];
      budget_row[c * 3 + k] = r[c] * cost[k];
    }
  }
  lp.a_ub = {budget_row};
  lp.b_ub = {4.0};
  lp.a_eq = {{1, 1, 1, 0, 0, 0}, {0, 0, 0, 1, 1, 1}};
  lp.b_eq = {1.0, 1.0};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  // Rows must each sum to 1 and respect the budget.
  EXPECT_NEAR(sol->x[0] + sol->x[1] + sol->x[2], 1.0, 1e-6);
  EXPECT_NEAR(sol->x[3] + sol->x[4] + sol->x[5], 1.0, 1e-6);
  double spent = 0.0;
  for (int i = 0; i < 6; ++i) spent += budget_row[i] * sol->x[i];
  EXPECT_LE(spent, 4.0 + 1e-6);
  EXPECT_GT(sol->objective_value, 0.6);
}

// Property sweep: random feasible LPs — solution must satisfy constraints
// and beat the all-zeros objective.
class RandomLpSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomLpSweep, SolutionIsFeasibleAndNonNegative) {
  sky::Rng rng(GetParam());
  size_t n = 2 + static_cast<size_t>(rng.UniformInt(0, 4));
  size_t m = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
  LinearProgram lp;
  lp.objective.resize(n);
  for (double& c : lp.objective) c = rng.Uniform(-1, 2);
  for (size_t i = 0; i < m; ++i) {
    std::vector<double> row(n);
    for (double& a : row) a = rng.Uniform(0.1, 1.0);  // positive -> bounded
    lp.a_ub.push_back(row);
    lp.b_ub.push_back(rng.Uniform(0.5, 5.0));
  }
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  for (double v : sol->x) EXPECT_GE(v, -1e-9);
  for (size_t i = 0; i < m; ++i) {
    double lhs = 0.0;
    for (size_t j = 0; j < n; ++j) lhs += lp.a_ub[i][j] * sol->x[j];
    EXPECT_LE(lhs, lp.b_ub[i] + 1e-6);
  }
  EXPECT_GE(sol->objective_value, -1e-9);  // x = 0 is always feasible here
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpSweep,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace sky::lp
