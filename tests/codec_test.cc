#include "video/codec.h"

#include <gtest/gtest.h>

#include "video/scene.h"

namespace sky::video {
namespace {

TEST(ByteModelTest, CalibratedToPaperNumbers) {
  // Footnote 2: one camera produces ~7.8 GB/day. At a mid diurnal density
  // of ~0.35 the model should land near 3 KB/frame.
  double bytes = EstimateH264FrameBytes(0.35);
  EXPECT_NEAR(bytes, 3060, 200);
  double per_day = EstimateStreamBytesPerSecond(0.35) * 86400;
  EXPECT_NEAR(per_day / 1e9, 7.9, 0.6);
}

TEST(ByteModelTest, MonotoneInDensityAndClamped) {
  EXPECT_LT(EstimateH264FrameBytes(0.1), EstimateH264FrameBytes(0.9));
  EXPECT_DOUBLE_EQ(EstimateH264FrameBytes(-1), EstimateH264FrameBytes(0));
  EXPECT_DOUBLE_EQ(EstimateH264FrameBytes(2), EstimateH264FrameBytes(1));
}

TEST(CodecTest, RoundTripLossless) {
  SceneOptions opts;
  opts.seed = 31;
  SceneGenerator gen(opts);
  for (int i = 0; i < 5; ++i) {
    Frame f = gen.NextFrame(0.6);
    std::vector<uint8_t> bytes = BlockRleCodec::Encode(f);
    auto decoded = BlockRleCodec::Decode(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->width, f.width);
    EXPECT_EQ(decoded->height, f.height);
    EXPECT_EQ(decoded->luma, f.luma);
  }
}

TEST(CodecTest, BusyScenesCompressWorse) {
  SceneOptions opts;
  opts.seed = 32;
  SceneGenerator quiet(opts);
  SceneGenerator busy(opts);
  // Warm both scenes up.
  size_t quiet_bytes = 0, busy_bytes = 0;
  for (int i = 0; i < 300; ++i) {
    quiet_bytes += BlockRleCodec::Encode(quiet.NextFrame(0.02)).size();
    busy_bytes += BlockRleCodec::Encode(busy.NextFrame(0.95)).size();
  }
  EXPECT_GT(busy_bytes, quiet_bytes);
}

TEST(CodecTest, DecodeRejectsCorruptInput) {
  EXPECT_FALSE(BlockRleCodec::Decode({}).ok());
  EXPECT_FALSE(BlockRleCodec::Decode({1, 2, 3}).ok());

  Frame f;
  f.width = 4;
  f.height = 2;
  f.luma.assign(8, 100);
  std::vector<uint8_t> bytes = BlockRleCodec::Encode(f);
  // Truncate the payload: size check must fail.
  bytes.pop_back();
  bytes.pop_back();
  EXPECT_FALSE(BlockRleCodec::Decode(bytes).ok());

  // Zero-length run is invalid.
  std::vector<uint8_t> zero_run(bytes.begin(), bytes.begin() + 8);
  zero_run.push_back(5);
  zero_run.push_back(0);
  EXPECT_FALSE(BlockRleCodec::Decode(zero_run).ok());
}

TEST(CodecTest, DecodeRejectsImplausibleDimensions) {
  std::vector<uint8_t> bytes;
  for (int i = 0; i < 8; ++i) bytes.push_back(0xFF);
  EXPECT_FALSE(BlockRleCodec::Decode(bytes).ok());
}

TEST(CodecTest, UniformFrameCompressesWell) {
  Frame f;
  f.width = 160;
  f.height = 90;
  f.luma.assign(160 * 90, 16);
  std::vector<uint8_t> bytes = BlockRleCodec::Encode(f);
  EXPECT_LT(bytes.size(), f.luma.size() / 50);
}

}  // namespace
}  // namespace sky::video
