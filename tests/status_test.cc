#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace sky {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad knob");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyIsCheapAndEqualityWorks) {
  Status a = Status::NotFound("k");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_FALSE(b.ok());
  Status ok1;
  Status ok2 = Status::Ok();
  EXPECT_EQ(ok1, ok2);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int x) {
  SKY_RETURN_NOT_OK(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> Doubled(int x) {
  SKY_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 21);
  EXPECT_EQ(good.ValueOr(-1), 21);

  Result<int> bad = ParsePositive(0);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> good = Doubled(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 8);
  Result<int> bad = Doubled(-4);
  EXPECT_FALSE(bad.ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace sky
