#include "core/placement_search.h"

#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "workloads/covid.h"
#include "workloads/udf_costs.h"

namespace sky::core {
namespace {

dag::TaskGraph HeavyChain(const sim::CostModel& cost_model) {
  dag::TaskGraph g;
  size_t a = g.AddNode(
      workloads::MakeUdfNode("decode", 0.2, 1e5, 5e5, cost_model));
  size_t b = g.AddNode(
      workloads::MakeUdfNode("detect", 8.0, 5e5, 1e4, cost_model));
  size_t c = g.AddNode(
      workloads::MakeUdfNode("track", 1.0, 5e5, 1e4, cost_model));
  (void)g.AddEdge(a, b);
  (void)g.AddEdge(a, c);
  (void)g.AddEdge(b, c);
  return g;
}

TEST(PlacementSearchTest, FrontierIsParetoAndSorted) {
  sim::CostModel cost_model(1.8);
  dag::TaskGraph g = HeavyChain(cost_model);
  sim::ClusterSpec cluster;
  cluster.cores = 2;
  auto frontier = SearchPlacements(g, cluster);
  ASSERT_TRUE(frontier.ok());
  ASSERT_FALSE(frontier->empty());
  for (size_t i = 1; i < frontier->size(); ++i) {
    // Cost strictly ascending, runtime strictly descending.
    EXPECT_GT((*frontier)[i].cloud_usd, (*frontier)[i - 1].cloud_usd);
    EXPECT_LT((*frontier)[i].runtime_s, (*frontier)[i - 1].runtime_s);
  }
}

TEST(PlacementSearchTest, CheapestEntryIsAllOnPrem) {
  sim::CostModel cost_model(1.8);
  dag::TaskGraph g = HeavyChain(cost_model);
  sim::ClusterSpec cluster;
  cluster.cores = 2;
  auto frontier = SearchPlacements(g, cluster);
  ASSERT_TRUE(frontier.ok());
  EXPECT_EQ(frontier->front().placement.NumCloudNodes(), 0u);
  EXPECT_DOUBLE_EQ(frontier->front().cloud_usd, 0.0);
}

TEST(PlacementSearchTest, CloudEntriesReduceRuntimeOnConstrainedCores) {
  sim::CostModel cost_model(1.8);
  dag::TaskGraph g = HeavyChain(cost_model);
  sim::ClusterSpec cluster;
  cluster.cores = 1;  // the 8 s detect node swamps a single core
  auto frontier = SearchPlacements(g, cluster);
  ASSERT_TRUE(frontier.ok());
  // There must be at least one cloud-using placement that beats on-prem.
  EXPECT_GT(frontier->size(), 1u);
  EXPECT_LT(frontier->back().runtime_s, frontier->front().runtime_s);
  EXPECT_GT(frontier->back().cloud_usd, 0.0);
}

TEST(PlacementSearchTest, RejectsEmptyGraph) {
  sim::ClusterSpec cluster;
  dag::TaskGraph g;
  EXPECT_FALSE(SearchPlacements(g, cluster).ok());
}

TEST(ParetoFilterTest, RemovesDominatedPoints) {
  std::vector<PlacementProfile> pts(4);
  pts[0].cloud_usd = 0.0;
  pts[0].runtime_s = 10.0;
  pts[1].cloud_usd = 1.0;
  pts[1].runtime_s = 12.0;  // dominated by 0
  pts[2].cloud_usd = 2.0;
  pts[2].runtime_s = 5.0;
  pts[3].cloud_usd = 3.0;
  pts[3].runtime_s = 5.0;  // dominated by 2
  auto pareto = ParetoFilterPlacements(pts);
  ASSERT_EQ(pareto.size(), 2u);
  EXPECT_DOUBLE_EQ(pareto[0].cloud_usd, 0.0);
  EXPECT_DOUBLE_EQ(pareto[1].cloud_usd, 2.0);
}

TEST(PlacementSearchTest, WorkloadGraphsProduceUsableFrontiers) {
  workloads::CovidWorkload covid;
  sim::CostModel cost_model(1.8);
  sim::ClusterSpec cluster;
  cluster.cores = 4;
  // The most expensive config must have a multi-point frontier on a small
  // server (cloud helps); the cheapest config runs real-time anyway.
  KnobConfig expensive = MostQualitativeConfig(covid);
  dag::TaskGraph g = covid.BuildTaskGraph(expensive, 4.0, cost_model);
  auto frontier = SearchPlacements(g, cluster);
  ASSERT_TRUE(frontier.ok());
  EXPECT_GE(frontier->size(), 2u);
}

}  // namespace
}  // namespace sky::core
