#include "core/placement_search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dag/thread_pool.h"
#include "sim/cost_model.h"
#include "workloads/covid.h"
#include "workloads/udf_costs.h"

namespace sky::core {
namespace {

bool FrontiersBitwiseEqual(const std::vector<PlacementProfile>& a,
                           const std::vector<PlacementProfile>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].placement.node_loc != b[i].placement.node_loc) return false;
    if (a[i].runtime_s != b[i].runtime_s) return false;
    if (a[i].cloud_usd != b[i].cloud_usd) return false;
    if (a[i].onprem_core_s != b[i].onprem_core_s) return false;
    if (a[i].uplink_bytes != b[i].uplink_bytes) return false;
  }
  return true;
}

/// Shared reference point for comparing two frontiers' hypervolumes: just
/// beyond the most expensive and the slowest point of either.
std::pair<double, double> SharedRef(const std::vector<PlacementProfile>& a,
                                    const std::vector<PlacementProfile>& b) {
  double ref_cost = 0.0, ref_rt = 0.0;
  for (const auto* f : {&a, &b}) {
    for (const PlacementProfile& p : *f) {
      ref_cost = std::max(ref_cost, p.cloud_usd);
      ref_rt = std::max(ref_rt, p.runtime_s);
    }
  }
  return {ref_cost + 1.0, ref_rt + 1.0};
}

dag::TaskGraph HeavyChain(const sim::CostModel& cost_model) {
  dag::TaskGraph g;
  size_t a = g.AddNode(
      workloads::MakeUdfNode("decode", 0.2, 1e5, 5e5, cost_model));
  size_t b = g.AddNode(
      workloads::MakeUdfNode("detect", 8.0, 5e5, 1e4, cost_model));
  size_t c = g.AddNode(
      workloads::MakeUdfNode("track", 1.0, 5e5, 1e4, cost_model));
  (void)g.AddEdge(a, b);
  (void)g.AddEdge(a, c);
  (void)g.AddEdge(b, c);
  return g;
}

TEST(PlacementSearchTest, FrontierIsParetoAndSorted) {
  sim::CostModel cost_model(1.8);
  dag::TaskGraph g = HeavyChain(cost_model);
  sim::ClusterSpec cluster;
  cluster.cores = 2;
  auto frontier = SearchPlacements(g, cluster);
  ASSERT_TRUE(frontier.ok());
  ASSERT_FALSE(frontier->empty());
  for (size_t i = 1; i < frontier->size(); ++i) {
    // Cost strictly ascending, runtime strictly descending.
    EXPECT_GT((*frontier)[i].cloud_usd, (*frontier)[i - 1].cloud_usd);
    EXPECT_LT((*frontier)[i].runtime_s, (*frontier)[i - 1].runtime_s);
  }
}

TEST(PlacementSearchTest, CheapestEntryIsAllOnPrem) {
  sim::CostModel cost_model(1.8);
  dag::TaskGraph g = HeavyChain(cost_model);
  sim::ClusterSpec cluster;
  cluster.cores = 2;
  auto frontier = SearchPlacements(g, cluster);
  ASSERT_TRUE(frontier.ok());
  EXPECT_EQ(frontier->front().placement.NumCloudNodes(), 0u);
  EXPECT_DOUBLE_EQ(frontier->front().cloud_usd, 0.0);
}

TEST(PlacementSearchTest, CloudEntriesReduceRuntimeOnConstrainedCores) {
  sim::CostModel cost_model(1.8);
  dag::TaskGraph g = HeavyChain(cost_model);
  sim::ClusterSpec cluster;
  cluster.cores = 1;  // the 8 s detect node swamps a single core
  auto frontier = SearchPlacements(g, cluster);
  ASSERT_TRUE(frontier.ok());
  // There must be at least one cloud-using placement that beats on-prem.
  EXPECT_GT(frontier->size(), 1u);
  EXPECT_LT(frontier->back().runtime_s, frontier->front().runtime_s);
  EXPECT_GT(frontier->back().cloud_usd, 0.0);
}

TEST(PlacementSearchTest, RejectsEmptyGraph) {
  sim::ClusterSpec cluster;
  dag::TaskGraph g;
  EXPECT_FALSE(SearchPlacements(g, cluster).ok());
}

TEST(ParetoFilterTest, RemovesDominatedPoints) {
  std::vector<PlacementProfile> pts(4);
  pts[0].cloud_usd = 0.0;
  pts[0].runtime_s = 10.0;
  pts[1].cloud_usd = 1.0;
  pts[1].runtime_s = 12.0;  // dominated by 0
  pts[2].cloud_usd = 2.0;
  pts[2].runtime_s = 5.0;
  pts[3].cloud_usd = 3.0;
  pts[3].runtime_s = 5.0;  // dominated by 2
  auto pareto = ParetoFilterPlacements(pts);
  ASSERT_EQ(pareto.size(), 2u);
  EXPECT_DOUBLE_EQ(pareto[0].cloud_usd, 0.0);
  EXPECT_DOUBLE_EQ(pareto[1].cloud_usd, 2.0);
}

TEST(PlacementSearchTest, WorkloadGraphsProduceUsableFrontiers) {
  workloads::CovidWorkload covid;
  sim::CostModel cost_model(1.8);
  sim::ClusterSpec cluster;
  cluster.cores = 4;
  // The most expensive config must have a multi-point frontier on a small
  // server (cloud helps); the cheapest config runs real-time anyway.
  KnobConfig expensive = MostQualitativeConfig(covid);
  dag::TaskGraph g = covid.BuildTaskGraph(expensive, 4.0, cost_model);
  auto frontier = SearchPlacements(g, cluster);
  ASSERT_TRUE(frontier.ok());
  EXPECT_GE(frontier->size(), 2u);
}

TEST(PlacementSearchTest, GreedyAndAnnealFrontiersAreValid) {
  sim::CostModel cost_model(1.8);
  dag::TaskGraph g = HeavyChain(cost_model);
  sim::ClusterSpec cluster;
  cluster.cores = 1;
  for (SearchBackend backend : {SearchBackend::kGreedy, SearchBackend::kAnneal}) {
    PlacementSearchOptions opts;
    opts.backend = backend;
    opts.eval_budget = 64;
    PlacementSearchStats stats;
    auto frontier = SearchPlacements(g, cluster, opts, &stats);
    ASSERT_TRUE(frontier.ok()) << frontier.status().ToString();
    ASSERT_FALSE(frontier->empty());
    // The all-on-prem anchor survives as the cheapest entry; the frontier
    // stays sorted and strictly Pareto.
    EXPECT_EQ(frontier->front().placement.NumCloudNodes(), 0u);
    EXPECT_DOUBLE_EQ(frontier->front().cloud_usd, 0.0);
    for (size_t i = 1; i < frontier->size(); ++i) {
      EXPECT_GT((*frontier)[i].cloud_usd, (*frontier)[i - 1].cloud_usd);
      EXPECT_LT((*frontier)[i].runtime_s, (*frontier)[i - 1].runtime_s);
    }
    EXPECT_LE(stats.evaluations, opts.eval_budget);
  }
}

TEST(PlacementSearchTest, AnnealBitwiseDeterministicAcrossPoolSizes) {
  sim::CostModel cost_model(1.8);
  dag::TaskGraph g = HeavyChain(cost_model);
  sim::ClusterSpec cluster;
  cluster.cores = 1;
  PlacementSearchOptions opts;
  opts.backend = SearchBackend::kAnneal;
  opts.eval_budget = 96;
  opts.seed = 17;
  auto serial = SearchPlacements(g, cluster, opts);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {1u, 2u, 8u}) {
    dag::ThreadPool pool(threads);
    opts.pool = &pool;
    auto parallel = SearchPlacements(g, cluster, opts);
    ASSERT_TRUE(parallel.ok());
    EXPECT_TRUE(FrontiersBitwiseEqual(*serial, *parallel))
        << "frontier differs at " << threads << " threads";
  }
}

TEST(PlacementSearchTest, TinyBudgetFallsBackToGreedyNeverWorse) {
  sim::CostModel cost_model(1.8);
  dag::TaskGraph g = HeavyChain(cost_model);
  sim::ClusterSpec cluster;
  cluster.cores = 1;
  // Cooling edge cases: with 0 or 1 fresh simulations the annealer cannot
  // leave the greedy phase, so it must return exactly the greedy result.
  for (size_t budget : {0u, 1u}) {
    PlacementSearchOptions opts;
    opts.eval_budget = budget;
    opts.backend = SearchBackend::kGreedy;
    auto greedy = SearchPlacements(g, cluster, opts);
    ASSERT_TRUE(greedy.ok());
    opts.backend = SearchBackend::kAnneal;
    auto anneal = SearchPlacements(g, cluster, opts);
    ASSERT_TRUE(anneal.ok());
    EXPECT_TRUE(FrontiersBitwiseEqual(*greedy, *anneal))
        << "budget " << budget;
  }
}

TEST(PlacementSearchTest, AnnealAtLeastGreedyOnWorkloadGraph) {
  workloads::CovidWorkload covid;
  sim::CostModel cost_model(1.8);
  sim::ClusterSpec cluster;
  cluster.cores = 2;
  dag::TaskGraph g =
      covid.BuildTaskGraph(MostQualitativeConfig(covid), 4.0, cost_model);
  PlacementSearchOptions opts;
  opts.eval_budget = 128;
  opts.backend = SearchBackend::kGreedy;
  auto greedy = SearchPlacements(g, cluster, opts);
  ASSERT_TRUE(greedy.ok());
  opts.backend = SearchBackend::kAnneal;
  auto anneal = SearchPlacements(g, cluster, opts);
  ASSERT_TRUE(anneal.ok());
  auto [ref_cost, ref_rt] = SharedRef(*greedy, *anneal);
  EXPECT_GE(FrontierHypervolume(*anneal, ref_cost, ref_rt),
            FrontierHypervolume(*greedy, ref_cost, ref_rt) - 1e-12);
}

TEST(PlacementSearchTest, RejectsBadCoolingFactor) {
  sim::CostModel cost_model(1.8);
  dag::TaskGraph g = HeavyChain(cost_model);
  sim::ClusterSpec cluster;
  PlacementSearchOptions opts;
  opts.backend = SearchBackend::kAnneal;
  opts.cooling = 0.0;
  EXPECT_FALSE(SearchPlacements(g, cluster, opts).ok());
  opts.cooling = 1.5;
  EXPECT_FALSE(SearchPlacements(g, cluster, opts).ok());
}

// ---------------------------------------------------------------------------
// Tie-breaking regression: on an instance where every placement has the
// same (cost, runtime), the kept placement must be the stable
// lexicographically-smallest one — all-on-prem — for every backend and for
// any input order into the Pareto filter (the pre-fix behavior depended on
// evaluation order).
// ---------------------------------------------------------------------------

dag::TaskGraph AllEqualCostGraph() {
  // Three independent unit tasks, identical on-prem/cloud runtimes, zero
  // payloads and zero cloud price: every one of the 2^3 placements
  // simulates to (cost 0, runtime 1) on a wide-enough cluster.
  dag::TaskGraph g;
  for (int i = 0; i < 3; ++i) {
    dag::TaskNode node;
    node.name = "unit";
    node.onprem_runtime_s = 1.0;
    node.cloud_runtime_s = 1.0;
    g.AddNode(node);
  }
  return g;
}

TEST(PlacementSearchTest, AllEqualCostInstancePinsAllOnPrem) {
  dag::TaskGraph g = AllEqualCostGraph();
  sim::ClusterSpec cluster;
  cluster.cores = 4;
  for (SearchBackend backend :
       {SearchBackend::kEnumerate, SearchBackend::kGreedy,
        SearchBackend::kAnneal}) {
    PlacementSearchOptions opts;
    opts.backend = backend;
    opts.eval_budget = 32;
    auto frontier = SearchPlacements(g, cluster, opts);
    ASSERT_TRUE(frontier.ok());
    ASSERT_EQ(frontier->size(), 1u);
    EXPECT_EQ(frontier->front().placement.NumCloudNodes(), 0u);
  }
}

TEST(ParetoFilterTest, EqualCostRuntimeTiesBreakByPlacementNotInputOrder) {
  // Four profiles with identical (cost, runtime) but distinct placements.
  std::vector<PlacementProfile> pts(4);
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i].cloud_usd = 1.0;
    pts[i].runtime_s = 2.0;
    pts[i].placement = dag::Placement::AllOnPrem(3);
  }
  pts[0].placement.node_loc[2] = dag::Loc::kCloud;  // 001
  pts[1].placement.node_loc[0] = dag::Loc::kCloud;  // 100
  pts[2].placement.node_loc[1] = dag::Loc::kCloud;  // 010
  pts[3].placement.node_loc[1] = dag::Loc::kCloud;  // 011
  pts[3].placement.node_loc[2] = dag::Loc::kCloud;

  auto forward = ParetoFilterPlacements(pts);
  std::reverse(pts.begin(), pts.end());
  auto reversed = ParetoFilterPlacements(pts);
  ASSERT_EQ(forward.size(), 1u);
  ASSERT_EQ(reversed.size(), 1u);
  // Lexicographically smallest placement (on-prem sorts first): 001.
  EXPECT_EQ(forward.front().placement.node_loc, reversed.front().placement.node_loc);
  EXPECT_EQ(forward.front().placement.node_loc[0], dag::Loc::kOnPrem);
  EXPECT_EQ(forward.front().placement.node_loc[1], dag::Loc::kOnPrem);
  EXPECT_EQ(forward.front().placement.node_loc[2], dag::Loc::kCloud);
}

TEST(HypervolumeTest, DominatingFrontierHasLargerHypervolume) {
  std::vector<PlacementProfile> weak(2), strong(3);
  weak[0].cloud_usd = 0.0; weak[0].runtime_s = 10.0;
  weak[1].cloud_usd = 4.0; weak[1].runtime_s = 6.0;
  strong[0].cloud_usd = 0.0; strong[0].runtime_s = 10.0;
  strong[1].cloud_usd = 2.0; strong[1].runtime_s = 6.0;  // dominates weak[1]
  strong[2].cloud_usd = 4.0; strong[2].runtime_s = 3.0;
  double hv_weak = FrontierHypervolume(weak, 10.0, 12.0);
  double hv_strong = FrontierHypervolume(strong, 10.0, 12.0);
  EXPECT_GT(hv_strong, hv_weak);
  // Hand-computed: (10-0)*(12-10) + (10-4)*(10-6) = 44.
  EXPECT_DOUBLE_EQ(hv_weak, 44.0);
}

}  // namespace
}  // namespace sky::core
