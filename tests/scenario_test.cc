// The adversarial scenario suite (sim/scenarios.h + workloads/scenarios.h).
// Gates:
//  - every scenario process is seed-deterministic (same seed => bitwise
//    same states; different seed => different stream);
//  - each scenario is statistically distinct from the steady-state diurnal
//    workloads: flash-crowd burst amplitude, day/night drift rate, and
//    fleet cross-camera correlation are asserted against the base streams;
//  - the scenario workloads run end-to-end through StreamSet kJoint with
//    bitwise-identical results across worker counts {1, 2, 8}.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "api/workload_registry.h"
#include "core/multi_stream.h"
#include "dag/thread_pool.h"
#include "sim/scenarios.h"
#include "workloads/scenarios.h"

namespace sky {
namespace {

std::vector<double> DensitySeries(const video::ContentProcess& p, SimTime from,
                                  SimTime to, double step_s) {
  std::vector<double> xs;
  for (SimTime t = from; t < to; t += step_s) xs.push_back(p.At(t).density);
  return xs;
}

double Pearson(const std::vector<double>& a, const std::vector<double>& b) {
  double ma = 0, mb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= a.size();
  mb /= b.size();
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return cov / std::sqrt(va * vb + 1e-30);
}

/// Per-hour-of-day mean removed from a fixed-step series: strips the shared
/// diurnal shape so the residual exposes bursts (flash crowd) and the fleet
/// latent rather than the time-of-day curve every stream has.
std::vector<double> DetrendHourOfDay(std::vector<double> xs, double step_s) {
  double sum[24] = {0.0};
  int cnt[24] = {0};
  for (size_t i = 0; i < xs.size(); ++i) {
    int h = static_cast<int>(std::fmod(i * step_s / 3600.0, 24.0));
    sum[h] += xs[i];
    ++cnt[h];
  }
  for (size_t i = 0; i < xs.size(); ++i) {
    int h = static_cast<int>(std::fmod(i * step_s / 3600.0, 24.0));
    xs[i] -= sum[h] / cnt[h];
  }
  return xs;
}

/// Hourly density profile of one day (4 in-hour samples averaged, taming
/// the 30 s fine noise).
std::vector<double> HourlyProfile(const video::ContentProcess& p, size_t day) {
  std::vector<double> profile;
  for (size_t h = 0; h < 24; ++h) {
    double sum = 0.0;
    for (size_t s = 0; s < 4; ++s) {
      sum += p.At(Days(day) + Hours(h) + 450.0 + 900.0 * s).density;
    }
    profile.push_back(sum / 4.0);
  }
  return profile;
}

// ---------------------------------------------------------------------------
// Seed determinism
// ---------------------------------------------------------------------------

TEST(ScenarioTest, ProcessesAreSeedDeterministic) {
  sim::FlashCrowdOptions fc;
  fc.base.horizon = Days(4);
  sim::FlashCrowdContentProcess fc_a(fc), fc_b(fc);
  sim::ContentDriftOptions dr;
  dr.base.horizon = Days(4);
  sim::ContentDriftProcess dr_a(dr), dr_b(dr);
  sim::FleetOptions fl;
  fl.base.horizon = Days(4);
  sim::FleetCameraContentProcess fl_a(fl, 42), fl_b(fl, 42);

  bool fc_diff = false, dr_diff = false, fl_diff = false;
  fc.base.seed ^= 0x9999;
  dr.base.seed ^= 0x9999;
  sim::FlashCrowdContentProcess fc_c(fc);
  sim::ContentDriftProcess dr_c(dr);
  sim::FleetCameraContentProcess fl_c(fl, 43);
  for (SimTime t = 0; t < Days(4); t += 311.0) {
    EXPECT_EQ(fc_a.At(t).density, fc_b.At(t).density);
    EXPECT_EQ(dr_a.At(t).density, dr_b.At(t).density);
    EXPECT_EQ(fl_a.At(t).density, fl_b.At(t).density);
    fc_diff |= fc_a.At(t).density != fc_c.At(t).density;
    dr_diff |= dr_a.At(t).density != dr_c.At(t).density;
    fl_diff |= fl_a.At(t).density != fl_c.At(t).density;
  }
  EXPECT_TRUE(fc_diff);
  EXPECT_TRUE(dr_diff);
  EXPECT_TRUE(fl_diff);
}

// ---------------------------------------------------------------------------
// Statistical distinctness from the steady-state streams
// ---------------------------------------------------------------------------

TEST(ScenarioTest, FlashCrowdBurstAmplitudeExceedsSteadyStateEvents) {
  sim::FlashCrowdOptions opts;
  opts.base.profile = video::DiurnalContentProcess::Profile::kShoppingStreet;
  opts.base.horizon = Days(6);
  sim::FlashCrowdContentProcess flash(opts);
  video::DiurnalContentProcess steady(opts.base);

  double max_boost = 0.0, burst_seconds = 0.0;
  for (SimTime t = 0; t < Days(6); t += 10.0) {
    double boost = flash.BurstBoost(t);
    max_boost = std::max(max_boost, boost);
    if (boost > 0.3) burst_seconds += 10.0;
  }
  // Bursts reach well above the diurnal event bumps (event_magnitude 0.35,
  // thinned) and sustain for minutes, not tens of seconds.
  EXPECT_GT(max_boost, 0.55);
  EXPECT_GT(burst_seconds, 600.0);

  // Statistically distinct from the steady street in the observable density
  // alone: the longest run sustained 0.3 above the hour-of-day mean. Diurnal
  // events last at most 140 s; flash crowds hold for many minutes
  // (empirically ~1370 s vs ~100 s on these seeds).
  auto longest_run = [](std::vector<double> xs, double step_s) {
    xs = DetrendHourOfDay(std::move(xs), step_s);
    double best = 0.0, run = 0.0;
    for (double x : xs) {
      if (x > 0.3) {
        run += step_s;
        best = std::max(best, run);
      } else {
        run = 0.0;
      }
    }
    return best;
  };
  double flash_run = longest_run(DensitySeries(flash, 0.0, Days(6), 10.0), 10.0);
  double steady_run =
      longest_run(DensitySeries(steady, 0.0, Days(6), 10.0), 10.0);
  EXPECT_GT(flash_run, 400.0);
  EXPECT_LT(steady_run, 250.0);
}

TEST(ScenarioTest, DriftRateDistinctFromSteadyState) {
  sim::ContentDriftOptions opts;
  opts.base.horizon = Days(14);
  sim::ContentDriftProcess drift(opts);
  video::DiurnalContentProcess steady(opts.base);

  // At the half-period the mixing phase reaches drift_magnitude.
  EXPECT_NEAR(drift.DriftPhase(Days(opts.drift_period_days / 2)),
              opts.drift_magnitude, 1e-9);
  EXPECT_NEAR(drift.DriftPhase(0.0), 0.0, 1e-9);

  // Day 0 vs day 6 (phase ~0.8): the drifted stream's time-of-day profile
  // decorrelates — activity moved into the night — while the steady
  // stream's shape survives its amplitude drift.
  double steady_corr = Pearson(HourlyProfile(steady, 0), HourlyProfile(steady, 6));
  double drift_corr = Pearson(HourlyProfile(drift, 0), HourlyProfile(drift, 6));
  EXPECT_GT(steady_corr, 0.7);
  EXPECT_LT(drift_corr, 0.45);
  EXPECT_LT(drift_corr, steady_corr - 0.3);
}

TEST(ScenarioTest, FleetCamerasCorrelateWithinButNotAcrossFleets) {
  sim::FleetOptions fleet;
  fleet.base.horizon = Days(4);
  sim::FleetCameraContentProcess cam1(fleet, 111), cam2(fleet, 222);
  sim::FleetOptions other = fleet;
  other.fleet_seed = 9999;
  sim::FleetCameraContentProcess cam3(other, 333);
  // Steady-state baseline: independent diurnal cameras, same seeds.
  video::DiurnalContentProcess::Options base = fleet.base;
  base.seed = 111;
  video::DiurnalContentProcess solo1(base);
  base.seed = 222;
  video::DiurnalContentProcess solo2(base);

  // The latent is a fleet property: every camera of the fleet rebuilds it
  // bitwise.
  for (SimTime t = 0; t < Days(4); t += 601.0) {
    EXPECT_EQ(cam1.SharedShift(t), cam2.SharedShift(t));
  }

  // All cameras share the diurnal time-of-day shape (raw densities correlate
  // >0.9 even for independent streams), so compare the detrended residuals:
  // there the fleet latent is the only shared signal. Empirically ~0.88
  // within the fleet, ~0 across fleets and for independent diurnal cameras.
  auto residual = [](const video::ContentProcess& p) {
    return DetrendHourOfDay(DensitySeries(p, 0.0, Days(4), 60.0), 60.0);
  };
  double within = Pearson(residual(cam1), residual(cam2));
  double across = Pearson(residual(cam1), residual(cam3));
  double steady = Pearson(residual(solo1), residual(solo2));
  EXPECT_GT(within, 0.5);
  EXPECT_LT(std::abs(across), 0.3);
  EXPECT_LT(std::abs(steady), 0.3);
  EXPECT_GT(within, across + 0.3);
  EXPECT_GT(within, steady + 0.3);
}

// ---------------------------------------------------------------------------
// Registry wiring
// ---------------------------------------------------------------------------

TEST(ScenarioTest, RegistryBuildsScenarioWorkloadsByName) {
  for (const char* name : {"flash-crowd", "drift", "fleet"}) {
    SCOPED_TRACE(name);
    auto names = api::KnownWorkloadNames();
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
    auto workload = api::MakeWorkloadByName(name);
    ASSERT_NE(workload, nullptr);
    auto seeded = api::MakeWorkloadByName(name, 777);
    ASSERT_NE(seeded, nullptr);
    EXPECT_EQ(workload->name(), seeded->name());
    // A usable content stream and knob space come along.
    EXPECT_GT(workload->content_process().horizon(), Days(10));
    EXPECT_GT(workload->knob_space().NumConfigs(), 1u);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: scenario streams through StreamSet kJoint, bitwise across
// worker counts {1, 2, 8}
// ---------------------------------------------------------------------------

class ScenarioStreamSetTest : public ::testing::Test {
 protected:
  static constexpr size_t kStreams = 3;

  static void SetUpTestSuite() {
    cluster_.cores = 4;
    cost_model_ = new sim::CostModel(1.8);
    workloads_[0] = new workloads::FlashCrowdWorkload(9100);
    workloads_[1] = new workloads::DriftWorkload(9200);
    workloads_[2] = new workloads::FleetCameraWorkload(9300);
    core::OfflineOptions opts;
    opts.segment_seconds = 4.0;
    opts.train_horizon = Days(3);
    opts.num_categories = 3;
    opts.train_forecaster = false;  // keep the fixture fast
    for (size_t s = 0; s < kStreams; ++s) {
      auto model =
          core::RunOfflinePhase(*workloads_[s], cluster_, *cost_model_, opts);
      ASSERT_TRUE(model.ok()) << model.status().ToString();
      models_[s] = new core::OfflineModel(std::move(*model));
    }
  }
  static void TearDownTestSuite() {
    for (size_t s = 0; s < kStreams; ++s) {
      delete models_[s];
      delete workloads_[s];
    }
    delete cost_model_;
  }

  static std::vector<core::StreamEngineJob> MakeJobs() {
    std::vector<core::StreamEngineJob> jobs;
    for (size_t s = 0; s < kStreams; ++s) {
      core::StreamEngineJob job;
      job.workload = workloads_[s];
      job.model = models_[s];
      job.cluster = cluster_;
      job.cost_model = cost_model_;
      job.options.duration = Hours(6);
      job.options.plan_interval = Hours(2);
      job.options.cloud_budget_usd_per_interval = 1.0;
      job.options.record_trace = true;
      job.options.trace_resolution_s = 300.0;
      job.start_time = Days(3);
      jobs.push_back(job);
    }
    return jobs;
  }

  static core::Workload* workloads_[kStreams];
  static core::OfflineModel* models_[kStreams];
  static sim::ClusterSpec cluster_;
  static sim::CostModel* cost_model_;
};

core::Workload* ScenarioStreamSetTest::workloads_[kStreams] = {};
core::OfflineModel* ScenarioStreamSetTest::models_[kStreams] = {};
sim::ClusterSpec ScenarioStreamSetTest::cluster_;
sim::CostModel* ScenarioStreamSetTest::cost_model_ = nullptr;

TEST_F(ScenarioStreamSetTest, JointRunBitwiseIdenticalAcrossWorkerCounts) {
  auto reference =
      core::StreamSet::Create(MakeJobs(), core::StreamSetOptions{});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  while (!reference->Done()) ASSERT_TRUE(reference->Step().ok());
  auto ref_results = reference->Results();
  ASSERT_EQ(ref_results.size(), kStreams);
  for (size_t v = 0; v < kStreams; ++v) {
    ASSERT_TRUE(ref_results[v].ok()) << "stream " << v;
    EXPECT_GT(ref_results[v]->segments, 0u);
  }

  dag::ThreadPool pool_of_1(1);
  dag::ThreadPool pool_of_7(7);
  struct Case {
    const char* label;
    dag::ThreadPool* pool;
  } cases[] = {{"1 worker", nullptr},
               {"2 workers", &pool_of_1},
               {"8 workers", &pool_of_7}};
  for (const Case& c : cases) {
    auto set = core::StreamSet::Create(MakeJobs(), core::StreamSetOptions{});
    ASSERT_TRUE(set.ok());
    ASSERT_TRUE(set->RunToCompletion(c.pool).ok()) << c.label;
    auto results = set->Results();
    ASSERT_EQ(results.size(), kStreams);
    for (size_t v = 0; v < kStreams; ++v) {
      ASSERT_TRUE(results[v].ok());
      EXPECT_TRUE(core::EngineResultsIdentical(*ref_results[v], *results[v]))
          << c.label << ", stream " << v;
    }
  }
}

}  // namespace
}  // namespace sky
