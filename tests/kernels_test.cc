// Parity and dispatch tests for the SIMD micro-kernels (src/ml/kernels.h).
//
// The central contract: every f64 kernel of every backend is BITWISE
// identical to the scalar oracle — the vector tiers change wall time, never
// results. That is property-tested here over randomized shapes that land on
// every remainder-lane class (m % 8 and m % 4 from 0 through the tile
// width), with bit-pattern comparison rather than tolerance. The f32 matvec
// is held to a numeric tolerance instead (it may fuse multiply-adds), and
// the dispatcher itself is tested for override/force-scalar behavior and
// for safe concurrent first use.

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ml/kernels.h"
#include "ml/matrix.h"
#include "util/rng.h"

namespace sky::ml {
namespace {

/// Bit-pattern equality: distinguishes -0.0/+0.0 and catches any rounding
/// divergence a tolerance would mask.
bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

std::vector<double> RandomVec(size_t n, Rng* rng) {
  std::vector<double> v(n);
  // Mixed magnitudes so reassociation errors (if any slipped in) would be
  // visible, plus exact zeros to hit the skip paths.
  for (double& x : v) {
    x = rng->Normal(0.0, 1.0) * std::pow(10.0, rng->Normal(0.0, 2.0));
    if (rng->Bernoulli(0.05)) x = 0.0;
  }
  return v;
}

/// Every non-scalar backend this build + host can run.
std::vector<const KernelOps*> VectorBackends() {
  std::vector<const KernelOps*> out;
  if (KernelBackendSupported(KernelBackend::kAvx2)) {
    out.push_back(Avx2KernelOps());
  }
  if (KernelBackendSupported(KernelBackend::kNeon)) {
    out.push_back(NeonKernelOps());
  }
  return out;
}

TEST(KernelsTest, GemmRowMatchesScalarBitwiseAcrossShapes) {
  Rng rng(101);
  const KernelOps* scalar = ScalarKernelOps();
  for (const KernelOps* ops : VectorBackends()) {
    // m sweeps 0..40: covers every remainder class of the 16- and 4-column
    // AVX2 tiles and the 8/2-column NEON tiles; k sweeps the quad remainder.
    for (size_t m = 0; m <= 40; ++m) {
      for (size_t kdim : {size_t{1}, size_t{3}, size_t{4}, size_t{7},
                          size_t{16}, size_t{33}}) {
        std::vector<double> a = RandomVec(kdim, &rng);
        std::vector<double> b = RandomVec(kdim * (m + 3), &rng);  // ldb > m
        size_t ldb = m + 3;
        std::vector<double> out_scalar = RandomVec(m, &rng);
        std::vector<double> out_vec = out_scalar;  // same accumulator seed
        scalar->gemm_row_f64(a.data(), 0, kdim, b.data(), ldb,
                             out_scalar.data(), m);
        ops->gemm_row_f64(a.data(), 0, kdim, b.data(), ldb, out_vec.data(), m);
        ASSERT_TRUE(BitEqual(out_scalar, out_vec))
            << KernelBackendName(ops->backend) << " diverged at m=" << m
            << " k=" << kdim;
        // A k-range not starting at 0 (the cache-blocked GEMM calls it that
        // way for every block after the first).
        if (kdim > 2) {
          scalar->gemm_row_f64(a.data(), 2, kdim, b.data(), ldb,
                               out_scalar.data(), m);
          ops->gemm_row_f64(a.data(), 2, kdim, b.data(), ldb, out_vec.data(),
                            m);
          ASSERT_TRUE(BitEqual(out_scalar, out_vec));
        }
      }
    }
  }
}

TEST(KernelsTest, Axpy4MatchesScalarBitwiseAcrossLengths) {
  Rng rng(102);
  const KernelOps* scalar = ScalarKernelOps();
  for (const KernelOps* ops : VectorBackends()) {
    for (size_t m = 0; m <= 20; ++m) {
      std::vector<double> v0 = RandomVec(m, &rng), v1 = RandomVec(m, &rng);
      std::vector<double> v2 = RandomVec(m, &rng), v3 = RandomVec(m, &rng);
      double d0 = rng.Normal(0.0, 1.0), d1 = rng.Normal(0.0, 1.0);
      double d2 = 0.0, d3 = rng.Normal(0.0, 1.0);  // exact-zero coefficient
      std::vector<double> out_scalar = RandomVec(m, &rng);
      std::vector<double> out_vec = out_scalar;
      scalar->axpy4_f64(d0, v0.data(), d1, v1.data(), d2, v2.data(), d3,
                        v3.data(), out_scalar.data(), m);
      ops->axpy4_f64(d0, v0.data(), d1, v1.data(), d2, v2.data(), d3,
                     v3.data(), out_vec.data(), m);
      ASSERT_TRUE(BitEqual(out_scalar, out_vec))
          << KernelBackendName(ops->backend) << " axpy4 diverged at m=" << m;
    }
  }
}

TEST(KernelsTest, Axpy1MatchesScalarBitwiseAcrossLengths) {
  Rng rng(103);
  const KernelOps* scalar = ScalarKernelOps();
  for (const KernelOps* ops : VectorBackends()) {
    for (size_t m = 0; m <= 20; ++m) {
      std::vector<double> v = RandomVec(m, &rng);
      double d = rng.Normal(0.0, 1.0);
      std::vector<double> out_scalar = RandomVec(m, &rng);
      std::vector<double> out_vec = out_scalar;
      scalar->axpy1_f64(d, v.data(), out_scalar.data(), m);
      ops->axpy1_f64(d, v.data(), out_vec.data(), m);
      ASSERT_TRUE(BitEqual(out_scalar, out_vec))
          << KernelBackendName(ops->backend) << " axpy1 diverged at m=" << m;
    }
  }
}

TEST(KernelsTest, DenseMatVecF32WithinToleranceOfF64Reference) {
  // The f32 matvec takes the TRANSPOSED weights (wt[c * rows + r], see
  // kernels.h). Every backend — scalar included — is held to an f32
  // tolerance against an f64 reference dot product; rows sweeps across the
  // 16/8-wide vector tiles and their sub-8 tails, cols across short and
  // long accumulations.
  Rng rng(104);
  std::vector<const KernelOps*> backends = {ScalarKernelOps()};
  for (const KernelOps* ops : VectorBackends()) backends.push_back(ops);
  for (const KernelOps* ops : backends) {
    for (size_t rows : {size_t{1}, size_t{3}, size_t{8}, size_t{11},
                        size_t{16}, size_t{19}, size_t{24}}) {
      for (size_t cols : {size_t{1}, size_t{5}, size_t{8}, size_t{13},
                          size_t{32}, size_t{40}}) {
        std::vector<float> wt(cols * rows), x(cols), bias(rows);
        for (float& v : wt) v = static_cast<float>(rng.Normal(0.0, 1.0));
        for (float& v : x) v = static_cast<float>(rng.Normal(0.0, 1.0));
        for (float& v : bias) v = static_cast<float>(rng.Normal(0.0, 1.0));
        std::vector<float> y(rows);
        ops->dense_matvec_f32(wt.data(), bias.data(), x.data(), y.data(),
                              rows, cols);
        for (size_t r = 0; r < rows; ++r) {
          double ref = bias[r];
          for (size_t c = 0; c < cols; ++c) {
            ref += static_cast<double>(x[c]) *
                   static_cast<double>(wt[c * rows + r]);
          }
          EXPECT_NEAR(y[r], ref, 1e-5 * (1.0 + static_cast<double>(cols)))
              << KernelBackendName(ops->backend) << " rows " << rows
              << " cols " << cols << " row " << r;
        }
      }
    }
  }
}

TEST(KernelsTest, MatMulIntoIdenticalAcrossBackends) {
  // End-to-end through the Matrix entry points: force each backend in turn
  // and require bitwise-identical products (this is the whole-library
  // consequence of the kernel-level contract above).
  Rng rng(105);
  Matrix a(13, 29), b(29, 17);
  for (double& v : a.data()) v = rng.Normal(0.0, 1.0);
  for (double& v : b.data()) v = rng.Normal(0.0, 1.0);
  KernelBackend original = ActiveKernelBackend();
  ASSERT_TRUE(SetKernelBackend(KernelBackend::kScalar).ok());
  Matrix out_scalar, out_scalar_t;
  MatMulInto(a, b, &out_scalar);
  MatMulTransposedAInto(a, a, &out_scalar_t);
  for (KernelBackend backend : {KernelBackend::kAvx2, KernelBackend::kNeon}) {
    if (!KernelBackendSupported(backend)) continue;
    ASSERT_TRUE(SetKernelBackend(backend).ok());
    Matrix out, out_t;
    MatMulInto(a, b, &out);
    MatMulTransposedAInto(a, a, &out_t);
    EXPECT_TRUE(BitEqual(out_scalar.data(), out.data()))
        << KernelBackendName(backend);
    EXPECT_TRUE(BitEqual(out_scalar_t.data(), out_t.data()))
        << KernelBackendName(backend);
  }
  ASSERT_TRUE(SetKernelBackend(original).ok());
}

TEST(KernelsTest, SetKernelBackendOverridesDispatch) {
  KernelBackend original = ActiveKernelBackend();
  ASSERT_TRUE(SetKernelBackend(KernelBackend::kScalar).ok());
  EXPECT_EQ(ActiveKernelBackend(), KernelBackend::kScalar);
  EXPECT_EQ(ActiveKernels().backend, KernelBackend::kScalar);
  if (KernelBackendSupported(BestSupportedBackend())) {
    ASSERT_TRUE(SetKernelBackend(BestSupportedBackend()).ok());
    EXPECT_EQ(ActiveKernelBackend(), BestSupportedBackend());
  }
  ASSERT_TRUE(SetKernelBackend(original).ok());
}

TEST(KernelsTest, SetKernelBackendRejectsUnsupportedTier) {
  // At most one vector tier exists per architecture, so the other one must
  // be rejected (and on a scalar-only host both are).
  for (KernelBackend backend : {KernelBackend::kAvx2, KernelBackend::kNeon}) {
    if (KernelBackendSupported(backend)) continue;
    EXPECT_FALSE(SetKernelBackend(backend).ok());
  }
  // Scalar is always available.
  EXPECT_TRUE(KernelBackendSupported(KernelBackend::kScalar));
}

TEST(KernelsTest, BackendNamesAreStable) {
  EXPECT_EQ(KernelBackendName(KernelBackend::kScalar), "scalar");
  EXPECT_EQ(KernelBackendName(KernelBackend::kAvx2), "avx2");
  EXPECT_EQ(KernelBackendName(KernelBackend::kNeon), "neon");
}

TEST(KernelsTest, ConcurrentFirstUseIsSafe) {
  // Many threads race ActiveKernels() + a kernel call; under TSan this
  // exercises the atomic-publish dispatch initialization. All threads must
  // observe the same table and compute the oracle result.
  constexpr size_t kThreads = 8;
  std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const KernelOps& ops = ActiveKernels();
      std::vector<double> out(v.size(), 1.0);
      ops.axpy1_f64(2.0, v.data(), out.data(), v.size());
      for (size_t i = 0; i < v.size(); ++i) {
        if (out[i] != 1.0 + 2.0 * v[i]) mismatches.fetch_add(1);
      }
      if (ops.backend != ActiveKernelBackend()) mismatches.fetch_add(1);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace sky::ml
