#include "sim/cluster_sim.h"

#include <gtest/gtest.h>

namespace sky::sim {
namespace {

dag::TaskNode Node(double onprem_s, double cloud_s = 0.0, double in_b = 0.0,
                   double out_b = 0.0, double usd = 0.0) {
  dag::TaskNode n;
  n.onprem_runtime_s = onprem_s;
  n.cloud_runtime_s = cloud_s;
  n.input_bytes = in_b;
  n.output_bytes = out_b;
  n.cloud_cost_usd = usd;
  return n;
}

TEST(ClusterSimTest, IndependentTasksFillCores) {
  // Four 1 s tasks on 2 cores: makespan 2 s.
  dag::TaskGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode(Node(1.0));
  ClusterSpec cluster;
  cluster.cores = 2;
  auto r = SimulateDag(g, dag::Placement::AllOnPrem(4), cluster);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->makespan_s, 2.0);
  EXPECT_DOUBLE_EQ(r->onprem_core_seconds, 4.0);
  EXPECT_DOUBLE_EQ(r->cloud_cost_usd, 0.0);
}

TEST(ClusterSimTest, ChainIsSerial) {
  dag::TaskGraph g;
  size_t a = g.AddNode(Node(1.0));
  size_t b = g.AddNode(Node(2.0));
  size_t c = g.AddNode(Node(3.0));
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  ClusterSpec cluster;
  cluster.cores = 8;
  auto r = SimulateDag(g, dag::Placement::AllOnPrem(3), cluster);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->makespan_s, 6.0);
  EXPECT_DOUBLE_EQ(r->finish_times_s[c], 6.0);
}

TEST(ClusterSimTest, MoreCoresNeverSlower) {
  dag::TaskGraph g;
  for (int i = 0; i < 9; ++i) g.AddNode(Node(1.0 + i * 0.3));
  for (int cores : {1, 2, 4, 8}) {
    ClusterSpec a;
    a.cores = cores;
    ClusterSpec b;
    b.cores = cores * 2;
    auto ra = SimulateDag(g, dag::Placement::AllOnPrem(9), a);
    auto rb = SimulateDag(g, dag::Placement::AllOnPrem(9), b);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_LE(rb->makespan_s, ra->makespan_s + 1e-9);
  }
}

TEST(ClusterSimTest, CloudTaskIncludesTransferAndCost) {
  dag::TaskGraph g;
  g.AddNode(Node(10.0, /*cloud_s=*/1.0, /*in_b=*/1e6, /*out_b=*/0.5e6,
                 /*usd=*/0.07));
  ClusterSpec cluster;
  cluster.cores = 1;
  cluster.uplink_bytes_per_s = 1e6;    // upload takes 1 s
  cluster.downlink_bytes_per_s = 1e6;  // download takes 0.5 s
  auto r = SimulateDag(g, dag::Placement::AllCloud(1), cluster);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->makespan_s, 1.0 + 1.0 + 0.5);
  EXPECT_DOUBLE_EQ(r->cloud_cost_usd, 0.07);
  EXPECT_DOUBLE_EQ(r->onprem_core_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r->uplink_bytes, 1e6);
}

TEST(ClusterSimTest, UplinkSerializesCloudUploads) {
  // Two cloud tasks each uploading 1 MB over a 1 MB/s uplink: the second
  // upload waits for the first (bandwidth occupancy, Appendix M.1).
  dag::TaskGraph g;
  g.AddNode(Node(5.0, 0.5, 1e6, 0, 0.01));
  g.AddNode(Node(5.0, 0.5, 1e6, 0, 0.01));
  ClusterSpec cluster;
  cluster.cores = 1;
  cluster.cloud_workers = 2;
  cluster.uplink_bytes_per_s = 1e6;
  auto r = SimulateDag(g, dag::Placement::AllCloud(2), cluster);
  ASSERT_TRUE(r.ok());
  // First: upload [0,1], compute [1,1.5]. Second: upload [1,2], compute
  // [2,2.5].
  EXPECT_DOUBLE_EQ(r->makespan_s, 2.5);
}

TEST(ClusterSimTest, SingleCloudWorkerSerializesCompute) {
  dag::TaskGraph g;
  g.AddNode(Node(5.0, 2.0, 0, 0, 0));
  g.AddNode(Node(5.0, 2.0, 0, 0, 0));
  ClusterSpec cluster;
  cluster.cores = 1;
  cluster.cloud_workers = 1;
  auto r = SimulateDag(g, dag::Placement::AllCloud(2), cluster);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->makespan_s, 4.0);
}

TEST(ClusterSimTest, OffloadingHelpsWhenCoresBusy) {
  // 3 independent 2 s tasks on 1 core: 6 s on-prem. Putting one on the
  // cloud (1.2 s round trip, no payload) cuts the makespan.
  dag::TaskGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode(Node(2.0, 1.2, 0, 0, 0.01));
  ClusterSpec cluster;
  cluster.cores = 1;
  auto all_prem = SimulateDag(g, dag::Placement::AllOnPrem(3), cluster);
  dag::Placement mixed{{dag::Loc::kOnPrem, dag::Loc::kOnPrem,
                        dag::Loc::kCloud}};
  auto offload = SimulateDag(g, mixed, cluster);
  ASSERT_TRUE(all_prem.ok() && offload.ok());
  EXPECT_DOUBLE_EQ(all_prem->makespan_s, 6.0);
  EXPECT_DOUBLE_EQ(offload->makespan_s, 4.0);
}

TEST(ClusterSimTest, RejectsBadInput) {
  dag::TaskGraph g;
  g.AddNode(Node(1.0));
  ClusterSpec cluster;
  EXPECT_FALSE(SimulateDag(g, dag::Placement::AllOnPrem(2), cluster).ok());
  ClusterSpec bad;
  bad.cores = 0;
  EXPECT_FALSE(SimulateDag(g, dag::Placement::AllOnPrem(1), bad).ok());
}

TEST(ClusterSimTest, DependencyDelaysChild) {
  dag::TaskGraph g;
  size_t a = g.AddNode(Node(2.0));
  size_t b = g.AddNode(Node(1.0));
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ClusterSpec cluster;
  cluster.cores = 4;
  auto r = SimulateDag(g, dag::Placement::AllOnPrem(2), cluster);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->finish_times_s[b], 3.0);
}

}  // namespace
}  // namespace sky::sim
