// The streaming-session parity gates: the steppable engine surface
// (Start/Step/RunUntil/Done + checkpoint/restore) must be bitwise-identical
// to the batch Run wrapper on every EngineResult field, including the
// trace. Also covers engine re-run identity and the precondition paths of
// the state machine.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/ev_counting.h"

namespace sky::core {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new workloads::EvCountingWorkload();
    cluster_.cores = 4;
    cost_model_ = new sim::CostModel(1.8);
    OfflineOptions opts;
    opts.segment_seconds = 4.0;
    opts.train_horizon = Days(6);
    opts.num_categories = 3;
    opts.forecaster.input_span = Days(1);
    opts.forecaster.planned_interval = Days(1);
    auto model = RunOfflinePhase(*workload_, cluster_, *cost_model_, opts);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new OfflineModel(std::move(*model));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete cost_model_;
    delete workload_;
  }

  static EngineOptions BaseOptions() {
    EngineOptions opts;
    opts.duration = Days(1);
    opts.plan_interval = Hours(8);  // several boundaries per run
    opts.cloud_budget_usd_per_interval = 1.0;
    opts.record_trace = true;  // parity includes the full trace
    opts.trace_resolution_s = 600.0;
    return opts;
  }

  static IngestionEngine MakeEngine(const EngineOptions& opts) {
    return IngestionEngine(workload_, model_, cluster_, cost_model_, opts);
  }

  static workloads::EvCountingWorkload* workload_;
  static sim::ClusterSpec cluster_;
  static sim::CostModel* cost_model_;
  static OfflineModel* model_;
};

workloads::EvCountingWorkload* SessionTest::workload_ = nullptr;
sim::ClusterSpec SessionTest::cluster_;
sim::CostModel* SessionTest::cost_model_ = nullptr;
OfflineModel* SessionTest::model_ = nullptr;

TEST_F(SessionTest, RunTwiceOnOneEngineIsIdentical) {
  IngestionEngine engine = MakeEngine(BaseOptions());
  auto first = engine.Run(Days(6));
  auto second = engine.Run(Days(6));
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_TRUE(EngineResultsIdentical(*first, *second));
  // A completed Run leaves the session inspectable in its finished state.
  EXPECT_TRUE(engine.Done());
  EXPECT_TRUE(EngineResultsIdentical(*second, engine.partial_result()));
  EXPECT_NE(engine.current_plan(), nullptr);
}

TEST_F(SessionTest, SteppedRunIsBitwiseEqualToBatchRun) {
  IngestionEngine batch = MakeEngine(BaseOptions());
  auto batch_result = batch.Run(Days(6));
  ASSERT_TRUE(batch_result.ok()) << batch_result.status().ToString();

  IngestionEngine stepped = MakeEngine(BaseOptions());
  ASSERT_TRUE(stepped.Start(Days(6)).ok());
  size_t steps = 0;
  while (!stepped.Done()) {
    ASSERT_TRUE(stepped.Step().ok());
    ++steps;
  }
  EXPECT_EQ(steps, batch_result->segments);
  EXPECT_TRUE(EngineResultsIdentical(*batch_result,
                                     stepped.partial_result()));
}

TEST_F(SessionTest, RunUntilExposesCoherentMidRunState) {
  IngestionEngine batch = MakeEngine(BaseOptions());
  auto batch_result = batch.Run(Days(6));
  ASSERT_TRUE(batch_result.ok());

  IngestionEngine engine = MakeEngine(BaseOptions());
  ASSERT_TRUE(engine.Start(Days(6)).ok());
  EXPECT_EQ(engine.current_plan(), nullptr);  // nothing planned yet
  ASSERT_TRUE(engine.RunUntil(Days(6) + Hours(6)).ok());
  EXPECT_FALSE(engine.Done());
  EXPECT_DOUBLE_EQ(engine.CurrentTime(), Days(6) + Hours(6));

  const EngineResult& partial = engine.partial_result();
  EXPECT_EQ(partial.segments,
            static_cast<size_t>(Hours(6) / model_->segment_seconds));
  EXPECT_GT(partial.mean_quality, 0.0);
  EXPECT_LE(partial.mean_quality, 1.0);
  EXPECT_FALSE(partial.trace.empty());
  ASSERT_NE(engine.current_plan(), nullptr);
  EXPECT_GT(engine.current_plan()->expected_quality, 0.0);
  EXPECT_GE(engine.buffer_occupancy_bytes(), 0.0);
  EXPECT_GE(engine.lag_seconds(), 0.0);

  // Finishing the stepped run converges on the batch result exactly.
  ASSERT_TRUE(engine.RunUntil(Days(20)).ok());
  EXPECT_TRUE(engine.Done());
  EXPECT_TRUE(EngineResultsIdentical(*batch_result, engine.partial_result()));
}

TEST_F(SessionTest, CheckpointRestoreResumesBitwise) {
  IngestionEngine batch = MakeEngine(BaseOptions());
  auto batch_result = batch.Run(Days(6));
  ASSERT_TRUE(batch_result.ok());

  // Step a third of the way (mid-interval: not on a plan boundary), save.
  IngestionEngine engine = MakeEngine(BaseOptions());
  ASSERT_TRUE(engine.Start(Days(6)).ok());
  ASSERT_TRUE(engine.RunUntil(Days(6) + Hours(9)).ok());
  auto saved = engine.Checkpoint();
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  size_t saved_segments = engine.partial_result().segments;

  // Keep running past the save point, then rewind and finish.
  ASSERT_TRUE(engine.RunUntil(Days(6) + Hours(16)).ok());
  EXPECT_GT(engine.partial_result().segments, saved_segments);
  ASSERT_TRUE(engine.Restore(*saved).ok());
  EXPECT_EQ(engine.partial_result().segments, saved_segments);
  ASSERT_TRUE(engine.RunUntil(Days(20)).ok());
  EXPECT_TRUE(engine.Done());
  EXPECT_TRUE(EngineResultsIdentical(*batch_result, engine.partial_result()));

  // The same checkpoint restored into a brand-new engine over the same
  // model/options also converges on the identical result.
  IngestionEngine fresh = MakeEngine(BaseOptions());
  ASSERT_TRUE(fresh.Restore(*saved).ok());
  while (!fresh.Done()) ASSERT_TRUE(fresh.Step().ok());
  EXPECT_TRUE(EngineResultsIdentical(*batch_result, fresh.partial_result()));
}

TEST_F(SessionTest, CheckpointOnPlanBoundaryAlsoResumesBitwise) {
  IngestionEngine batch = MakeEngine(BaseOptions());
  auto batch_result = batch.Run(Days(6));
  ASSERT_TRUE(batch_result.ok());

  IngestionEngine engine = MakeEngine(BaseOptions());
  ASSERT_TRUE(engine.Start(Days(6)).ok());
  ASSERT_TRUE(engine.RunUntil(Days(6) + Hours(8)).ok());  // exactly boundary 2
  ASSERT_TRUE(engine.AtPlanBoundary());
  auto saved = engine.Checkpoint();
  ASSERT_TRUE(saved.ok());

  IngestionEngine fresh = MakeEngine(BaseOptions());
  ASSERT_TRUE(fresh.Restore(*saved).ok());
  ASSERT_TRUE(fresh.RunUntil(Days(20)).ok());
  EXPECT_TRUE(EngineResultsIdentical(*batch_result, fresh.partial_result()));
}

TEST_F(SessionTest, StateMachinePreconditions) {
  IngestionEngine engine = MakeEngine(BaseOptions());
  EXPECT_FALSE(engine.started());
  EXPECT_FALSE(engine.Done());
  // Inspection accessors are safe (and empty) before any session exists.
  EXPECT_EQ(engine.partial_result().segments, 0u);
  EXPECT_EQ(engine.current_plan(), nullptr);
  EXPECT_DOUBLE_EQ(engine.buffer_occupancy_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(engine.lag_seconds(), 0.0);
  EXPECT_EQ(engine.segments_per_interval(), 0);
  EXPECT_TRUE(engine.boundary_forecast().empty());
  EXPECT_EQ(engine.Step().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.RunUntil(Days(7)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.Checkpoint().status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(engine.Start(Days(6)).ok());
  EXPECT_TRUE(engine.started());
  EXPECT_TRUE(engine.AtPlanBoundary());
  ASSERT_TRUE(engine.Step().ok());
  // Mid-interval: boundary hooks must refuse.
  EXPECT_FALSE(engine.AtPlanBoundary());
  EXPECT_EQ(engine.PrepareBoundary().code(),
            StatusCode::kFailedPrecondition);
  KnobPlan dummy;
  EXPECT_EQ(engine.InstallPlan(std::move(dummy)).code(),
            StatusCode::kFailedPrecondition);

  // Exhaust the run: further steps refuse.
  ASSERT_TRUE(engine.RunUntil(Days(20)).ok());
  EXPECT_TRUE(engine.Done());
  EXPECT_EQ(engine.Step().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SessionTest, ExternallyInstalledPlanDrivesTheInterval) {
  // Drive one engine's boundaries by hand through the joint-planning hooks
  // with its own self-computed inputs: must match the self-planning run
  // exactly (this is the single-stream degenerate case of StreamSet).
  IngestionEngine batch = MakeEngine(BaseOptions());
  auto batch_result = batch.Run(Days(6));
  ASSERT_TRUE(batch_result.ok());

  IngestionEngine manual = MakeEngine(BaseOptions());
  ASSERT_TRUE(manual.Start(Days(6)).ok());
  while (!manual.Done()) {
    if (manual.AtPlanBoundary()) {
      ASSERT_TRUE(manual.PrepareBoundary().ok());
      // Idempotent: preparing twice must not double the online update.
      ASSERT_TRUE(manual.PrepareBoundary().ok());
      auto plan = ComputeKnobPlan(model_->categories,
                                  manual.boundary_forecast(),
                                  manual.config_costs(),
                                  manual.PlanBudgetCoreSPerVideoS(),
                                  manual.options().planner_backend);
      ASSERT_TRUE(plan.ok());
      ASSERT_TRUE(manual.InstallPlan(std::move(*plan)).ok());
    }
    ASSERT_TRUE(manual.Step().ok());
  }
  EXPECT_TRUE(EngineResultsIdentical(*batch_result,
                                     manual.partial_result()));
}

}  // namespace
}  // namespace sky::core
