// The `sky serve` subsystem. Gates (ISSUE):
//  - e2e bitwise parity: N sessions opened by concurrent clients against a
//    live server finish with EngineResults (traces included) identical to
//    ONE in-process joint-planning StreamSet built from the same specs;
//  - admission control: with a pooled budget armed, the session that would
//    push the fleet past the budget is rejected with a clean
//    kResourceExhausted protocol error and the connection stays usable;
//  - live reconfiguration at a plan boundary is bitwise-equivalent to the
//    in-process ReconfigureStream call;
//  - drain + --recover: a drained server's checkpoint resumes every
//    in-flight session bitwise on a second server;
//  - metrics: the BENCH-style JSON document carries the counters;
//  - wire protocol and serve-checkpoint formats round-trip exactly and
//    refuse corruption.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/skyscraper.h"
#include "api/workload_registry.h"
#include "core/engine.h"
#include "core/multi_stream.h"
#include "io/checkpoint_io.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace sky {
namespace {

using core::EngineResult;
using core::EngineResultsIdentical;
using serve::Client;
using serve::Frame;
using serve::FrameType;
using serve::Server;
using serve::ServerOptions;
using serve::SessionSpec;

constexpr char kModelPath[] = "/tmp/sky_serve_test_model.bin";

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto workload = api::MakeWorkloadByName("ev");
    ASSERT_NE(workload, nullptr);
    api::Skyscraper sky(workload.get());
    sky.SetResources(TestResources());
    core::OfflineOptions opts;
    opts.segment_seconds = 4.0;
    opts.train_horizon = Days(3);
    opts.num_categories = 3;
    opts.train_forecaster = false;  // keep the fixture fast
    ASSERT_TRUE(sky.Fit(opts).ok());
    ASSERT_TRUE(sky.SaveModel(kModelPath, workload->name()).ok());
  }
  static void TearDownTestSuite() { std::remove(kModelPath); }

  static api::Resources TestResources() {
    api::Resources r;
    r.cores = 4;
    r.cloud_budget_usd_per_interval = 1.0;
    return r;
  }

  static ServerOptions BaseServerOptions() {
    ServerOptions opts;
    opts.model_path = kModelPath;
    opts.workload = "ev";
    opts.resources = TestResources();
    return opts;
  }

  /// The spec every e2e session uses: everything explicit, so the server's
  /// default resolution plays no part and the in-process mirror is exact.
  static SessionSpec SpecForSeed(uint64_t content_seed) {
    SessionSpec spec;
    spec.workload = "ev";
    spec.content_seed = content_seed;
    spec.start_days = 3.0;
    spec.duration_days = 0.25;        // 6 h
    spec.plan_interval_days = 0.125;  // 3 h -> 2 lockstep boundaries
    spec.engine_seed = 71;
    // Traces make the bitwise comparisons maximally sensitive.
    spec.record_trace = true;
    spec.trace_resolution_s = 300.0;
    return spec;
  }

  /// The exact job Server::BuildJob derives from `spec` — the in-process
  /// half of every bitwise gate. The tenant keeps workload/facade alive
  /// for the job's lifetime, like the server's StreamTenant does.
  struct Tenant {
    std::unique_ptr<core::Workload> workload;
    std::unique_ptr<api::Skyscraper> facade;
  };
  static core::StreamEngineJob MirrorJob(const SessionSpec& spec,
                                         Tenant* tenant) {
    tenant->workload =
        api::MakeWorkloadByName(spec.workload, spec.content_seed);
    EXPECT_NE(tenant->workload, nullptr);
    tenant->facade =
        std::make_unique<api::Skyscraper>(tenant->workload.get());
    tenant->facade->SetResources(TestResources());
    EXPECT_TRUE(
        tenant->facade->LoadModel(kModelPath, tenant->workload->name())
            .ok());
    core::EngineOptions opts;
    opts.duration = Days(spec.duration_days);
    opts.plan_interval = Days(spec.plan_interval_days);
    opts.seed = spec.engine_seed;
    opts.record_trace = spec.record_trace;
    opts.trace_resolution_s = spec.trace_resolution_s;
    if (spec.cloud_budget_usd_per_interval.has_value()) {
      opts.cloud_budget_usd_per_interval =
          *spec.cloud_budget_usd_per_interval;
    }
    opts.work_budget_override = spec.work_budget_override;
    auto job = tenant->facade->MakeStreamJob(Days(spec.start_days), opts);
    EXPECT_TRUE(job.ok()) << job.status().ToString();
    return *job;
  }

  /// min_k work cost of one served session — the price admission control
  /// charges a newcomer (mirrors Server::NewcomerCheapestCost).
  static double CheapestSessionCost() {
    Tenant tenant;
    MirrorJob(SpecForSeed(1), &tenant);
    auto model = tenant.facade->model();
    EXPECT_TRUE(model.ok());
    double cheapest = 0.0;
    bool first = true;
    for (const auto& p : (*model)->profiles) {
      if (first || p.work_core_s_per_video_s < cheapest) {
        cheapest = p.work_core_s_per_video_s;
        first = false;
      }
    }
    return cheapest;
  }
};

// ---------------------------------------------------------------------------
// Wire protocol units.

TEST_F(ServeTest, SessionSpecPayloadRoundTrips) {
  SessionSpec spec = SpecForSeed(12345);
  spec.f32_forecast = true;
  spec.cloud_budget_usd_per_interval = 0.375;
  spec.work_budget_override = 2.5;
  std::string payload;
  AppendSessionSpec(spec, &payload);
  io::wire::Cursor c(payload.data(), payload.size());
  SessionSpec back;
  ASSERT_TRUE(ParseSessionSpec(&c, &back).ok());
  EXPECT_EQ(back.workload, spec.workload);
  ASSERT_TRUE(back.content_seed.has_value());
  EXPECT_EQ(*back.content_seed, 12345u);
  EXPECT_EQ(back.start_days, spec.start_days);
  EXPECT_EQ(back.duration_days, spec.duration_days);
  EXPECT_EQ(back.plan_interval_days, spec.plan_interval_days);
  EXPECT_EQ(back.engine_seed, spec.engine_seed);
  EXPECT_EQ(back.f32_forecast, true);
  EXPECT_EQ(back.record_trace, spec.record_trace);
  EXPECT_EQ(back.trace_resolution_s, spec.trace_resolution_s);
  ASSERT_TRUE(back.cloud_budget_usd_per_interval.has_value());
  EXPECT_EQ(*back.cloud_budget_usd_per_interval, 0.375);
  EXPECT_EQ(back.work_budget_override, 2.5);

  // Unset optionals stay unset through the wire.
  SessionSpec bare;
  std::string bare_payload;
  AppendSessionSpec(bare, &bare_payload);
  io::wire::Cursor c2(bare_payload.data(), bare_payload.size());
  SessionSpec bare_back;
  ASSERT_TRUE(ParseSessionSpec(&c2, &bare_back).ok());
  EXPECT_FALSE(bare_back.content_seed.has_value());
  EXPECT_FALSE(bare_back.cloud_budget_usd_per_interval.has_value());
}

TEST_F(ServeTest, ErrorPayloadCarriesTheStatus) {
  std::string payload;
  serve::AppendError(Status::ResourceExhausted("fleet is full"), &payload);
  Frame frame;
  frame.type = FrameType::kError;
  frame.payload = payload;
  Status decoded = serve::ParseError(frame);
  EXPECT_EQ(decoded.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(decoded.ToString().find("fleet is full"), std::string::npos);
}

TEST_F(ServeTest, FramesRoundTripOverASocketAndRefuseCorruption) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  std::string payload = "hello frames";
  ASSERT_TRUE(serve::WriteFrame(fds[0], FrameType::kMetrics, payload).ok());
  Frame frame;
  ASSERT_TRUE(serve::ReadFrame(fds[1], &frame).ok());
  EXPECT_EQ(frame.type, FrameType::kMetrics);
  EXPECT_EQ(frame.payload, payload);

  // A flipped payload byte must fail the FNV-1a trailer check.
  std::string encoded;
  serve::EncodeFrame(FrameType::kMetrics, payload, &encoded);
  encoded[4 + 1 + 8] ^= 0x01;  // first payload byte, after magic+type+len
  ASSERT_EQ(::write(fds[0], encoded.data(), encoded.size()),
            static_cast<ssize_t>(encoded.size()));
  Frame corrupt;
  EXPECT_EQ(serve::ReadFrame(fds[1], &corrupt).code(),
            StatusCode::kInvalidArgument);

  // Clean EOF before any frame byte is "peer hung up", not corruption.
  ASSERT_EQ(::shutdown(fds[0], SHUT_WR), 0);
  Frame eof;
  EXPECT_EQ(serve::ReadFrame(fds[1], &eof).code(), StatusCode::kNotFound);

  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(ServeTest, ServeCheckpointRoundTripsByteStable) {
  serve::ServeCheckpoint ckpt;
  ckpt.next_session_id = 7;
  ckpt.sessions_accepted = 6;
  ckpt.sessions_rejected = 2;
  ckpt.shared_budget_core_s_per_video_s = 3.5;
  serve::SessionRecord running;
  running.id = 5;
  running.spec = SpecForSeed(42);
  running.state = serve::SessionState::kRunning;
  running.stream_index = 1;
  ckpt.sessions.push_back(running);
  serve::SessionRecord failed;
  failed.id = 6;
  failed.spec = SpecForSeed(43);
  failed.state = serve::SessionState::kFailed;
  failed.stream_index = 2;
  failed.error = Status::Internal("stream quarantined");
  ckpt.sessions.push_back(failed);
  ckpt.fleet_bytes = "opaque fleet payload";

  std::string bytes;
  ASSERT_TRUE(SerializeServeCheckpoint(ckpt, &bytes).ok());
  auto parsed = serve::ParseServeCheckpoint(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string bytes_again;
  ASSERT_TRUE(SerializeServeCheckpoint(*parsed, &bytes_again).ok());
  EXPECT_EQ(bytes, bytes_again);  // byte-stable round trip
  EXPECT_EQ(parsed->next_session_id, 7u);
  EXPECT_EQ(parsed->sessions.size(), 2u);
  EXPECT_EQ(parsed->sessions[1].error.code(), StatusCode::kInternal);
  EXPECT_EQ(parsed->fleet_bytes, "opaque fleet payload");

  // Corruption is refused.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x01;
  EXPECT_FALSE(serve::ParseServeCheckpoint(corrupt).ok());
  EXPECT_FALSE(serve::ParseServeCheckpoint(bytes.substr(0, 10)).ok());
}

// ---------------------------------------------------------------------------
// End-to-end gates against a live server.

TEST_F(ServeTest, ConcurrentSessionsBitwiseMatchInProcessJointFleet) {
  constexpr size_t kSessions = 3;
  ServerOptions opts = BaseServerOptions();
  // Hold the virtual clock until all sessions joined, so every stream is a
  // member from boundary 0 — the precondition for comparing against one
  // fleet born with all of them.
  opts.start_after_sessions = kSessions;
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // N genuinely concurrent clients; admission order (and so slot order) is
  // whatever the race produces, so remember which spec landed in which
  // fleet slot and mirror that order in-process.
  struct Opened {
    uint64_t session_id = 0;
    uint64_t slot = 0;
    size_t spec_index = 0;
    EngineResult result;
    Status status;
  };
  std::vector<Opened> opened(kSessions);
  std::vector<std::thread> clients;
  for (size_t i = 0; i < kSessions; ++i) {
    clients.emplace_back([&, i] {
      auto client = Client::Connect((*server)->port());
      if (!client.ok()) {
        opened[i].status = client.status();
        return;
      }
      auto admitted = client->OpenSession(SpecForSeed(100 + i));
      if (!admitted.ok()) {
        opened[i].status = admitted.status();
        return;
      }
      opened[i].session_id = admitted->first;
      opened[i].slot = admitted->second;
      opened[i].spec_index = i;
      auto result = client->FetchResult(admitted->first);
      if (!result.ok()) {
        opened[i].status = result.status();
        return;
      }
      opened[i].result = std::move(*result);
    });
  }
  for (auto& t : clients) t.join();
  for (size_t i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(opened[i].status.ok())
        << "client " << i << ": " << opened[i].status.ToString();
  }

  // In-process reference: ONE joint fleet whose job order is the server's
  // slot order.
  std::vector<size_t> spec_at_slot(kSessions);
  for (const Opened& o : opened) {
    ASSERT_LT(o.slot, kSessions);
    spec_at_slot[o.slot] = o.spec_index;
  }
  std::vector<Tenant> tenants(kSessions);
  std::vector<core::StreamEngineJob> jobs;
  for (size_t slot = 0; slot < kSessions; ++slot) {
    jobs.push_back(
        MirrorJob(SpecForSeed(100 + spec_at_slot[slot]), &tenants[slot]));
  }
  core::StreamSetOptions set_opts;
  set_opts.planning = core::MultiStreamPlanning::kJoint;
  auto reference = core::StreamSet::Create(std::move(jobs), set_opts);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  while (!reference->Done()) ASSERT_TRUE(reference->Step().ok());
  auto ref_results = reference->Results();

  for (const Opened& o : opened) {
    ASSERT_TRUE(ref_results[o.slot].ok());
    EXPECT_TRUE(EngineResultsIdentical(*ref_results[o.slot], o.result))
        << "session " << o.session_id << " (slot " << o.slot << ")";
  }

  ASSERT_TRUE(Client::Connect((*server)->port())->Drain().ok());
  EXPECT_TRUE((*server)->Wait().ok());
}

TEST_F(ServeTest, OverBudgetSessionRejectedWithCleanProtocolError) {
  // Price the budget so exactly two sessions fit: the third's all-cheapest
  // marginal cost would exceed it.
  double session_cost = CheapestSessionCost();
  ASSERT_GT(session_cost, 0.0);
  ServerOptions opts = BaseServerOptions();
  opts.shared_budget_core_s_per_video_s = 2.5 * session_cost;
  opts.start_after_sessions = 4;  // hold the clock for the whole test
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->OpenSession(SpecForSeed(200)).ok());
  ASSERT_TRUE(client->OpenSession(SpecForSeed(201)).ok());

  auto rejected = client->OpenSession(SpecForSeed(202));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // The rejection is a clean protocol reply: the same connection keeps
  // working, and the rejection is counted.
  auto metrics = client->Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("\"sessions_accepted\": 2"), std::string::npos)
      << *metrics;
  EXPECT_NE(metrics->find("\"sessions_rejected\": 1"), std::string::npos)
      << *metrics;

  // Raising the budget at the next boundary makes the same spec admissible
  // — admission is the planner's feasibility check, not a static cap.
  ASSERT_TRUE(client->SetSharedBudget(4.0 * session_cost).ok());
  EXPECT_TRUE(client->OpenSession(SpecForSeed(202)).ok());

  ASSERT_TRUE(client->Drain().ok());
  EXPECT_TRUE((*server)->Wait().ok());
}

TEST_F(ServeTest, MaxSessionsCapRejectsTheOverflowSession) {
  ServerOptions opts = BaseServerOptions();
  opts.max_sessions = 1;
  opts.start_after_sessions = 2;  // hold the clock
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->OpenSession(SpecForSeed(300)).ok());
  auto rejected = client->OpenSession(SpecForSeed(301));
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(client->Drain().ok());
  EXPECT_TRUE((*server)->Wait().ok());
}

TEST_F(ServeTest, WrongWorkloadAndUnknownSessionAreCleanErrors) {
  ServerOptions opts = BaseServerOptions();
  opts.start_after_sessions = 1;  // hold the clock
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());

  SessionSpec wrong = SpecForSeed(1);
  wrong.workload = "covid";
  EXPECT_EQ(client->OpenSession(wrong).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client->FetchResult(999).status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(client->Drain().ok());
  EXPECT_TRUE((*server)->Wait().ok());
}

TEST_F(ServeTest, LiveReconfigureMatchesInProcessReconfigureStream) {
  // Two-stream fleet; stream 0's cloud budget is cut to zero by a live
  // kReconfigure BEFORE the clock starts (the server is holding for two
  // sessions, so the reconfigure lands at boundary 0 deterministically).
  ServerOptions opts = BaseServerOptions();
  opts.start_after_sessions = 2;
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok());

  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());
  auto first = client->OpenSession(SpecForSeed(400));
  ASSERT_TRUE(first.ok());
  core::StreamReconfig change;
  change.cloud_budget_usd_per_interval = 0.0;
  ASSERT_TRUE(client->Reconfigure(first->first, change).ok());
  auto second = client->OpenSession(SpecForSeed(401));  // releases the hold
  ASSERT_TRUE(second.ok());

  auto first_result = client->FetchResult(first->first);
  ASSERT_TRUE(first_result.ok()) << first_result.status().ToString();
  auto second_result = client->FetchResult(second->first);
  ASSERT_TRUE(second_result.ok());

  // In-process mirror: same jobs, same ReconfigureStream before stepping.
  std::vector<Tenant> tenants(2);
  std::vector<core::StreamEngineJob> jobs;
  jobs.push_back(MirrorJob(SpecForSeed(400), &tenants[0]));
  jobs.push_back(MirrorJob(SpecForSeed(401), &tenants[1]));
  core::StreamSetOptions set_opts;
  set_opts.planning = core::MultiStreamPlanning::kJoint;
  auto reference = core::StreamSet::Create(std::move(jobs), set_opts);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference->ReconfigureStream(0, change).ok());
  while (!reference->Done()) ASSERT_TRUE(reference->Step().ok());
  auto ref_results = reference->Results();
  ASSERT_TRUE(ref_results[0].ok() && ref_results[1].ok());
  EXPECT_TRUE(EngineResultsIdentical(*ref_results[0], *first_result));
  EXPECT_TRUE(EngineResultsIdentical(*ref_results[1], *second_result));

  ASSERT_TRUE(client->Drain().ok());
  EXPECT_TRUE((*server)->Wait().ok());
}

TEST_F(ServeTest, DrainCheckpointRecoverFinishesEverySessionBitwise) {
  const std::string ckpt_path = "/tmp/sky_serve_test_drain_ckpt.bin";
  std::remove(ckpt_path.c_str());
  constexpr size_t kSessions = 2;

  // Long enough (4 simulated days, 32 plan boundaries) that the drain below
  // lands while the sessions are still mid-run.
  auto long_spec = [](uint64_t seed) {
    SessionSpec spec = SpecForSeed(seed);
    spec.duration_days = 4.0;
    return spec;
  };

  uint64_t ids[kSessions];
  {
    ServerOptions opts = BaseServerOptions();
    opts.start_after_sessions = kSessions;
    opts.checkpoint_path = ckpt_path;
    opts.checkpoint_every_boundaries = 1;
    auto server = Server::Start(opts);
    ASSERT_TRUE(server.ok());
    auto client = Client::Connect((*server)->port());
    ASSERT_TRUE(client.ok());
    for (size_t i = 0; i < kSessions; ++i) {
      auto admitted = client->OpenSession(long_spec(500 + i));
      ASSERT_TRUE(admitted.ok());
      ids[i] = admitted->first;
    }
    // A waiter blocked in FetchResult when the drain lands is told to
    // finish the session via --recover instead of hanging.
    std::thread waiter([&] {
      auto c = Client::Connect((*server)->port());
      ASSERT_TRUE(c.ok());
      auto r = c->FetchResult(ids[0]);
      EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
    });
    // Drain only once the fleet has demonstrably planned a couple of
    // boundaries, so the drain checkpoint carries genuine mid-run state.
    for (;;) {
      auto metrics = client->Metrics();
      ASSERT_TRUE(metrics.ok());
      size_t pos = metrics->find("\"boundaries_planned\": ");
      ASSERT_NE(pos, std::string::npos);
      long planned =
          std::strtol(metrics->c_str() + pos + 22, nullptr, 10);
      ASSERT_NE(metrics->find("\"sessions_running\": 2"),
                std::string::npos)
          << "sessions finished before the drain could land:\n"
          << *metrics;
      if (planned >= 2) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(client->Drain().ok());
    EXPECT_TRUE((*server)->Wait().ok());
    waiter.join();
  }

  // Second server resumes every in-flight session from the drain
  // checkpoint; the sessions keep their original ids.
  EngineResult recovered[kSessions];
  {
    ServerOptions opts = BaseServerOptions();
    opts.recover_path = ckpt_path;
    auto server = Server::Start(opts);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto client = Client::Connect((*server)->port());
    ASSERT_TRUE(client.ok());
    for (size_t i = 0; i < kSessions; ++i) {
      auto result = client->FetchResult(ids[i]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      recovered[i] = std::move(*result);
    }
    ASSERT_TRUE(client->Drain().ok());
    EXPECT_TRUE((*server)->Wait().ok());
  }

  // Reference: the fleet that never stopped.
  std::vector<Tenant> tenants(kSessions);
  std::vector<core::StreamEngineJob> jobs;
  for (size_t i = 0; i < kSessions; ++i) {
    jobs.push_back(MirrorJob(long_spec(500 + i), &tenants[i]));
  }
  core::StreamSetOptions set_opts;
  set_opts.planning = core::MultiStreamPlanning::kJoint;
  auto reference = core::StreamSet::Create(std::move(jobs), set_opts);
  ASSERT_TRUE(reference.ok());
  while (!reference->Done()) ASSERT_TRUE(reference->Step().ok());
  auto ref_results = reference->Results();
  for (size_t i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(ref_results[i].ok());
    EXPECT_TRUE(EngineResultsIdentical(*ref_results[i], recovered[i]))
        << "session " << ids[i];
  }
  std::remove(ckpt_path.c_str());
}

TEST_F(ServeTest, MetricsDocumentCarriesTheCounters) {
  ServerOptions opts = BaseServerOptions();
  opts.shared_budget_core_s_per_video_s = 100.0;
  opts.start_after_sessions = 2;  // hold the clock
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect((*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->OpenSession(SpecForSeed(600)).ok());

  auto metrics = client->Metrics();
  ASSERT_TRUE(metrics.ok());
  for (const char* key :
       {"\"uptime_s\"", "\"sessions_accepted\": 1",
        "\"sessions_rejected\": 0", "\"sessions_running\": 1",
        "\"boundaries_planned\"", "\"boundary_p50_ms\"",
        "\"boundary_p99_ms\"",
        "\"shared_budget_core_s_per_video_s\": 100", "\"fleet_restarts\"",
        "\"sessions\"", "\"workload\": \"ev\"", "\"state\": \"running\"",
        "\"stream_index\": 0"}) {
    EXPECT_NE(metrics->find(key), std::string::npos)
        << "missing " << key << " in:\n" << *metrics;
  }

  ASSERT_TRUE(client->Drain().ok());
  EXPECT_TRUE((*server)->Wait().ok());
}

}  // namespace
}  // namespace sky
