// Crash-consistent recovery and self-healing supervision. Gates:
//  - engine level: a run interrupted by a throwing workload UDF, restored
//    from its last plan-boundary Checkpoint() and driven to completion, is
//    BITWISE identical (full trace included) to the run that never faulted;
//  - checkpoint wire format: serialize -> deserialize -> re-serialize is
//    byte-stable, a restored fresh engine finishes bitwise identical to the
//    original, and corrupt/truncated/missing checkpoint files error cleanly;
//  - fleet level: StreamSet supervision restarts a failed stream from its
//    boundary snapshot — results bitwise identical to the never-faulted
//    fleet at worker counts {1, 2, 8} — and a stream that keeps failing
//    burns its restart budget and quarantines without deadlocking anyone;
//  - fleet checkpoints: SaveCheckpoint -> RecoverFromCheckpoint -> complete
//    reproduces the uninterrupted fleet bitwise, and the periodic
//    auto-checkpoint writes a loadable file during the run.

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/multi_stream.h"
#include "core/offline.h"
#include "dag/thread_pool.h"
#include "io/checkpoint_io.h"
#include "sim/faults.h"
#include "workloads/ev_counting.h"

namespace sky {
namespace {

using core::EngineOptions;
using core::EngineResult;
using core::EngineResultsIdentical;
using core::IngestionEngine;
using core::IngestState;
using core::OfflineModel;
using core::StreamEngineJob;
using core::StreamSet;
using core::StreamSetOptions;

/// EvCountingWorkload that throws from MeasuredQuality once armed, then
/// disarms — the transient "UDF crashed once" failure a supervised restart
/// must absorb.
class ThrowingWorkload : public workloads::EvCountingWorkload {
 public:
  explicit ThrowingWorkload(uint64_t seed)
      : workloads::EvCountingWorkload(seed) {}

  void ArmAfter(long n) { remaining_ = n; }

  double MeasuredQuality(const core::KnobConfig& config,
                         const video::ContentState& content,
                         Rng* rng) const override {
    if (remaining_ >= 0 && remaining_-- == 0) {
      throw std::runtime_error("injected workload failure");
    }
    return workloads::EvCountingWorkload::MeasuredQuality(config, content,
                                                          rng);
  }

 private:
  mutable long remaining_ = -1;
};

/// Throws on EVERY MeasuredQuality call past the arming point — the
/// persistent failure that must exhaust the restart budget.
class PersistentlyThrowingWorkload : public workloads::EvCountingWorkload {
 public:
  PersistentlyThrowingWorkload(uint64_t seed, long after)
      : workloads::EvCountingWorkload(seed), after_(after) {}

  double MeasuredQuality(const core::KnobConfig& config,
                         const video::ContentState& content,
                         Rng* rng) const override {
    if (calls_++ >= after_) {
      throw std::runtime_error("persistent workload failure");
    }
    return workloads::EvCountingWorkload::MeasuredQuality(config, content,
                                                          rng);
  }

 private:
  long after_;
  mutable long calls_ = 0;
};

class RecoveryTest : public ::testing::Test {
 protected:
  static constexpr size_t kStreams = 5;

  static void SetUpTestSuite() {
    cluster_.cores = 4;
    cost_model_ = new sim::CostModel(1.8);
    core::OfflineOptions opts;
    opts.segment_seconds = 4.0;
    opts.train_horizon = Days(3);
    opts.num_categories = 3;
    opts.train_forecaster = false;  // keep the fixture fast
    for (size_t s = 0; s < kStreams; ++s) {
      workloads_[s] =
          new workloads::EvCountingWorkload(static_cast<uint64_t>(8400 + s));
      auto model =
          core::RunOfflinePhase(*workloads_[s], cluster_, *cost_model_, opts);
      ASSERT_TRUE(model.ok()) << model.status().ToString();
      models_[s] = new OfflineModel(std::move(*model));
    }
  }
  static void TearDownTestSuite() {
    for (size_t s = 0; s < kStreams; ++s) {
      delete models_[s];
      delete workloads_[s];
    }
    delete cost_model_;
  }

  static EngineOptions BaseOptions() {
    EngineOptions opts;
    opts.duration = Hours(6);
    opts.plan_interval = Hours(2);
    opts.cloud_budget_usd_per_interval = 1.0;
    // Traces make the bitwise comparisons maximally sensitive.
    opts.record_trace = true;
    opts.trace_resolution_s = 300.0;
    return opts;
  }

  static std::vector<StreamEngineJob> MakeJobs() {
    std::vector<StreamEngineJob> jobs;
    for (size_t s = 0; s < kStreams; ++s) {
      StreamEngineJob job;
      job.workload = workloads_[s];
      job.model = models_[s];
      job.cluster = cluster_;
      job.cost_model = cost_model_;
      job.options = BaseOptions();
      job.start_time = Days(3);
      jobs.push_back(job);
    }
    return jobs;
  }

  static std::vector<Result<EngineResult>> ReferenceResults() {
    auto set = StreamSet::Create(MakeJobs(), StreamSetOptions{});
    EXPECT_TRUE(set.ok());
    while (!set->Done()) EXPECT_TRUE(set->Step().ok());
    return set->Results();
  }

  static workloads::EvCountingWorkload* workloads_[kStreams];
  static OfflineModel* models_[kStreams];
  static sim::ClusterSpec cluster_;
  static sim::CostModel* cost_model_;
};

workloads::EvCountingWorkload* RecoveryTest::workloads_[kStreams] = {};
OfflineModel* RecoveryTest::models_[kStreams] = {};
sim::ClusterSpec RecoveryTest::cluster_;
sim::CostModel* RecoveryTest::cost_model_ = nullptr;

TEST_F(RecoveryTest, EngineRestoredFromBoundaryCheckpointMatchesFaultFree) {
  IngestionEngine clean(workloads_[0], models_[0], cluster_, cost_model_,
                        BaseOptions());
  auto fault_free = clean.Run(Days(3));
  ASSERT_TRUE(fault_free.ok());

  // The same run under an injected UDF throw mid-interval, driven by a
  // manual supervisor: snapshot every boundary, restore + replay on failure.
  sim::FaultPlan plan;
  plan.AddUdfThrow(Days(3) + Hours(3));
  sim::FaultInjector injector(plan, 11u);
  EngineOptions opts = BaseOptions();
  opts.fault_injector = &injector;
  IngestionEngine engine(workloads_[0], models_[0], cluster_, cost_model_,
                         opts);
  ASSERT_TRUE(engine.Start(Days(3)).ok());
  std::optional<IngestState> boundary_ckpt;
  size_t restarts = 0;
  while (!engine.Done()) {
    if (engine.AtPlanBoundary()) {
      auto snap = engine.Checkpoint();
      ASSERT_TRUE(snap.ok());
      boundary_ckpt.emplace(std::move(*snap));
    }
    try {
      Status stepped = engine.Step();
      ASSERT_TRUE(stepped.ok()) << stepped.ToString();
    } catch (const std::runtime_error&) {
      ASSERT_TRUE(boundary_ckpt.has_value());
      ASSERT_TRUE(engine.Restore(*boundary_ckpt).ok());
      ++restarts;
    }
  }
  EXPECT_EQ(restarts, 1u);  // the one-shot fired exactly once
  EXPECT_TRUE(EngineResultsIdentical(*fault_free, engine.partial_result()));
}

TEST_F(RecoveryTest, SerializedCheckpointRestoresBitwiseIntoFreshEngine) {
  IngestionEngine original(workloads_[0], models_[0], cluster_, cost_model_,
                           BaseOptions());
  ASSERT_TRUE(original.Start(Days(3)).ok());
  // Deliberately mid-interval: the snapshot must carry partial-interval
  // state (lag, histograms, RNG position), not just boundary state.
  ASSERT_TRUE(original.RunUntil(Days(3) + Hours(3)).ok());

  auto snap = original.Checkpoint();
  ASSERT_TRUE(snap.ok());
  std::string bytes;
  ASSERT_TRUE(io::SerializeIngestState(*snap, &bytes).ok());

  auto parsed = io::DeserializeIngestState(bytes, *models_[0]);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string bytes_again;
  ASSERT_TRUE(io::SerializeIngestState(*parsed, &bytes_again).ok());
  EXPECT_EQ(bytes, bytes_again);  // byte-stable round trip

  IngestionEngine resumed(workloads_[0], models_[0], cluster_, cost_model_,
                          BaseOptions());
  ASSERT_TRUE(resumed.Restore(*parsed).ok());
  while (!original.Done()) ASSERT_TRUE(original.Step().ok());
  while (!resumed.Done()) ASSERT_TRUE(resumed.Step().ok());
  EXPECT_TRUE(EngineResultsIdentical(original.partial_result(),
                                     resumed.partial_result()));

  // And both match the uninterrupted batch run.
  IngestionEngine clean(workloads_[0], models_[0], cluster_, cost_model_,
                        BaseOptions());
  auto fault_free = clean.Run(Days(3));
  ASSERT_TRUE(fault_free.ok());
  EXPECT_TRUE(
      EngineResultsIdentical(*fault_free, resumed.partial_result()));
}

TEST_F(RecoveryTest, CorruptCheckpointBytesAreRefused) {
  IngestionEngine engine(workloads_[0], models_[0], cluster_, cost_model_,
                         BaseOptions());
  ASSERT_TRUE(engine.Start(Days(3)).ok());
  ASSERT_TRUE(engine.RunUntil(Days(3) + Hours(1)).ok());
  auto snap = engine.Checkpoint();
  ASSERT_TRUE(snap.ok());
  std::string bytes;
  ASSERT_TRUE(io::SerializeIngestState(*snap, &bytes).ok());

  // Truncation and bit flips at several offsets: always a clean error.
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() / 2,
                     bytes.size() - 1}) {
    auto parsed =
        io::DeserializeIngestState(bytes.substr(0, cut), *models_[0]);
    EXPECT_FALSE(parsed.ok()) << "truncated at " << cut;
  }
  for (size_t flip : {size_t{0}, bytes.size() / 3, bytes.size() / 2}) {
    std::string mangled = bytes;
    mangled[flip] ^= 0x20;
    auto parsed = io::DeserializeIngestState(mangled, *models_[0]);
    EXPECT_FALSE(parsed.ok()) << "flipped at " << flip;
  }
}

TEST_F(RecoveryTest, FleetSupervisionHealsBitwiseAcrossWorkerCounts) {
  auto reference = ReferenceResults();

  dag::ThreadPool pool_of_1(1);
  dag::ThreadPool pool_of_7(7);
  struct Case {
    const char* label;
    dag::ThreadPool* pool;
  } cases[] = {{"1 worker", nullptr},
               {"2 workers", &pool_of_1},
               {"8 workers", &pool_of_7}};
  for (const Case& c : cases) {
    // Stream 2's workload throws once mid-run; with a restart budget the
    // supervisor must absorb it and reproduce the fault-free fleet exactly.
    ThrowingWorkload bad(8402);
    std::vector<StreamEngineJob> jobs = MakeJobs();
    jobs[2].workload = &bad;
    StreamSetOptions options;
    options.max_stream_restarts = 2;
    auto set = StreamSet::Create(jobs, options);
    ASSERT_TRUE(set.ok());
    bad.ArmAfter(40);
    ASSERT_TRUE(set->RunToCompletion(c.pool).ok()) << c.label;
    ASSERT_TRUE(set->Done()) << c.label;
    EXPECT_EQ(set->total_restarts(), 1u) << c.label;
    EXPECT_EQ(set->stream_restarts(2), 1u) << c.label;

    auto results = set->Results();
    ASSERT_EQ(results.size(), kStreams);
    for (size_t v = 0; v < kStreams; ++v) {
      ASSERT_TRUE(reference[v].ok() && results[v].ok())
          << c.label << ", stream " << v;
      EXPECT_TRUE(EngineResultsIdentical(*reference[v], *results[v]))
          << c.label << ", stream " << v;
    }
  }
}

TEST_F(RecoveryTest, PersistentFailureExhaustsRestartBudgetWithoutDeadlock) {
  dag::ThreadPool pool_of_1(1);
  dag::ThreadPool pool_of_7(7);
  struct Case {
    const char* label;
    dag::ThreadPool* pool;
  } cases[] = {{"1 worker", nullptr},
               {"2 workers", &pool_of_1},
               {"8 workers", &pool_of_7}};
  for (const Case& c : cases) {
    PersistentlyThrowingWorkload bad(8401, 40);
    std::vector<StreamEngineJob> jobs = MakeJobs();
    jobs[1].workload = &bad;
    StreamSetOptions options;
    options.max_stream_restarts = 2;
    auto set = StreamSet::Create(jobs, options);
    ASSERT_TRUE(set.ok());
    ASSERT_TRUE(set->RunToCompletion(c.pool).ok()) << c.label;
    ASSERT_TRUE(set->Done()) << c.label;

    // The budget was spent, then the stream was declared dead; everyone
    // else finished every segment.
    EXPECT_EQ(set->stream_restarts(1), 2u) << c.label;
    auto results = set->Results();
    EXPECT_FALSE(results[1].ok()) << c.label;
    EXPECT_EQ(results[1].status().code(), StatusCode::kInternal) << c.label;
    size_t expected_segments = static_cast<size_t>(Hours(6) / 4.0);
    for (size_t v = 0; v < kStreams; ++v) {
      if (v == 1) continue;
      ASSERT_TRUE(results[v].ok()) << c.label << ", stream " << v;
      EXPECT_EQ(results[v]->segments, expected_segments) << c.label;
    }
  }
}

TEST_F(RecoveryTest, FleetCheckpointRecoversBitwiseMidRun) {
  auto reference = ReferenceResults();
  const std::string path = testing::TempDir() + "fleet_mid_run.ckpt";

  // Run half the fleet's horizon, checkpoint, and simulate process death by
  // dropping the set entirely.
  {
    auto set = StreamSet::Create(MakeJobs(), StreamSetOptions{});
    ASSERT_TRUE(set.ok());
    ASSERT_TRUE(set->RunUntilElapsed(Hours(3)).ok());
    ASSERT_TRUE(set->SaveCheckpoint(path).ok());
  }

  // A fresh process: same jobs, recovered state, driven to completion at
  // several worker counts — all bitwise equal to the uninterrupted fleet.
  dag::ThreadPool pool_of_7(7);
  for (dag::ThreadPool* pool : {static_cast<dag::ThreadPool*>(nullptr),
                                &pool_of_7}) {
    auto recovered = StreamSet::RecoverFromCheckpoint(MakeJobs(), path);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_TRUE(recovered->RunToCompletion(pool).ok());
    auto results = recovered->Results();
    ASSERT_EQ(results.size(), kStreams);
    for (size_t v = 0; v < kStreams; ++v) {
      ASSERT_TRUE(reference[v].ok() && results[v].ok()) << "stream " << v;
      EXPECT_TRUE(EngineResultsIdentical(*reference[v], *results[v]))
          << "stream " << v;
    }
  }
  std::remove(path.c_str());
}

TEST_F(RecoveryTest, AutoCheckpointWritesLoadableFleetSnapshots) {
  auto reference = ReferenceResults();
  const std::string path = testing::TempDir() + "fleet_auto.ckpt";
  std::remove(path.c_str());

  StreamSetOptions options;
  options.checkpoint_path = path;
  options.checkpoint_every_boundaries = 1;
  auto set = StreamSet::Create(MakeJobs(), options);
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(set->RunToCompletion(nullptr).ok());
  ASSERT_TRUE(set->last_checkpoint_status().ok())
      << set->last_checkpoint_status().ToString();

  // The file on disk is the LAST boundary's snapshot; recovering it replays
  // only the final interval — bitwise equal to the uninterrupted fleet, and
  // the checkpointing run itself is unperturbed by the side writes.
  auto own_results = set->Results();
  auto recovered = StreamSet::RecoverFromCheckpoint(MakeJobs(), path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_TRUE(recovered->RunToCompletion(nullptr).ok());
  auto results = recovered->Results();
  for (size_t v = 0; v < kStreams; ++v) {
    ASSERT_TRUE(reference[v].ok() && results[v].ok()) << "stream " << v;
    EXPECT_TRUE(EngineResultsIdentical(*reference[v], *results[v]))
        << "stream " << v;
    ASSERT_TRUE(own_results[v].ok());
    EXPECT_TRUE(EngineResultsIdentical(*reference[v], *own_results[v]))
        << "stream " << v;
  }
  std::remove(path.c_str());
}

TEST_F(RecoveryTest, FleetCheckpointFileErrorsAreClean) {
  auto missing = io::LoadFleetCheckpoint(testing::TempDir() +
                                         "no_such_fleet.ckpt");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  const std::string path = testing::TempDir() + "fleet_corrupt.ckpt";
  {
    auto set = StreamSet::Create(MakeJobs(), StreamSetOptions{});
    ASSERT_TRUE(set.ok());
    ASSERT_TRUE(set->RunUntilElapsed(Hours(1)).ok());
    ASSERT_TRUE(set->SaveCheckpoint(path).ok());
  }

  // Recovering into a fleet of the wrong size is refused (while the file is
  // still valid).
  std::vector<StreamEngineJob> too_few = MakeJobs();
  too_few.pop_back();
  auto mismatched = StreamSet::RecoverFromCheckpoint(too_few, path);
  EXPECT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);

  // Flip one byte mid-file: the checksum must catch it before any parsing.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 128, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 128, SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  auto corrupt = io::LoadFleetCheckpoint(path);
  EXPECT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kInvalidArgument);
  auto recovered = StreamSet::RecoverFromCheckpoint(MakeJobs(), path);
  EXPECT_FALSE(recovered.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sky
