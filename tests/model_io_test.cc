// Tests for the model persistence layer (src/io/model_io) and the facade's
// SaveModel/LoadModel — the train-once / serve-many contract:
//
//  1. a save/load round trip reproduces the OfflineModel bitwise
//     (core::OfflineModelsIdentical, which compares configs, full placement
//     profiles, category centers, the training sequence, and the trained
//     forecaster's parameters);
//  2. ingestion from a loaded model is bitwise-equal to ingestion from the
//     in-memory model on every EngineResult field including the trace —
//     which also gates that the forecaster's Adam optimizer state survives
//     the round trip (online fine-tuning at plan boundaries would diverge
//     otherwise);
//  3. corrupted / truncated / wrong-version / wrong-magic files fail with
//     an error Status — no crashes, and a failed facade LoadModel leaves
//     the previous model untouched;
//  4. facade precondition paths: SaveModel without a model, LoadModel as a
//     full substitute for Fit().

#include "io/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "api/skyscraper.h"
#include "core/engine.h"
#include "io/atomic_file.h"
#include "core/offline.h"
#include "workloads/ev_counting.h"

namespace sky::io {
namespace {

core::OfflineOptions FastOffline() {
  core::OfflineOptions opts;
  opts.segment_seconds = 4.0;
  opts.train_horizon = Days(4);
  opts.num_categories = 3;
  opts.forecaster.input_span = Days(1);
  opts.forecaster.planned_interval = Days(1);
  return opts;
}

/// One shared fitted model per suite (the offline fit dominates test time).
const core::OfflineModel& FittedModel() {
  static const core::OfflineModel* model = [] {
    workloads::EvCountingWorkload job;
    sim::ClusterSpec cluster;
    cluster.cores = 4;
    sim::CostModel cost_model(1.8);
    auto fitted =
        core::RunOfflinePhase(job, cluster, cost_model, FastOffline());
    EXPECT_TRUE(fitted.ok()) << fitted.status().ToString();
    return new core::OfflineModel(std::move(fitted).value());
  }();
  return *model;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string Serialized(const std::string& annotation = "EV-COUNT") {
  std::string bytes;
  Status st = SerializeOfflineModel(FittedModel(), annotation, &bytes);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return bytes;
}

TEST(ModelIoTest, RoundTripIsBitwiseIdentical) {
  std::string bytes = Serialized();
  std::string annotation;
  auto loaded = DeserializeOfflineModel(bytes, &annotation);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(annotation, "EV-COUNT");
  EXPECT_TRUE(core::OfflineModelsIdentical(FittedModel(), *loaded));
  // Informational fields outside OfflineModelsIdentical round-trip too.
  EXPECT_EQ(loaded->step_runtimes.filter_configs_s,
            FittedModel().step_runtimes.filter_configs_s);
  EXPECT_EQ(loaded->step_runtimes.forecast_training_s,
            FittedModel().step_runtimes.forecast_training_s);
  ASSERT_TRUE(loaded->forecaster.has_value());
  EXPECT_EQ(loaded->forecaster->train_report().best_val_loss,
            FittedModel().forecaster->train_report().best_val_loss);
  EXPECT_EQ(loaded->forecaster->train_report().train_loss_per_epoch,
            FittedModel().forecaster->train_report().train_loss_per_epoch);
}

TEST(ModelIoTest, SerializationIsDeterministic) {
  EXPECT_EQ(Serialized(), Serialized());
}

TEST(ModelIoTest, LoadedModelIngestsBitwiseEqually) {
  std::string bytes = Serialized();
  auto loaded = DeserializeOfflineModel(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  workloads::EvCountingWorkload job;
  sim::ClusterSpec cluster;
  cluster.cores = 4;
  sim::CostModel cost_model(1.8);
  core::EngineOptions opts;
  opts.duration = Days(1);
  opts.plan_interval = Hours(6);  // several boundaries -> online fine-tunes
  opts.cloud_budget_usd_per_interval = 0.5;
  opts.record_trace = true;

  core::IngestionEngine from_memory(&job, &FittedModel(), cluster,
                                    &cost_model, opts);
  auto memory_run = from_memory.Run(Days(4));
  ASSERT_TRUE(memory_run.ok()) << memory_run.status().ToString();

  core::IngestionEngine from_file(&job, &*loaded, cluster, &cost_model, opts);
  auto file_run = from_file.Run(Days(4));
  ASSERT_TRUE(file_run.ok()) << file_run.status().ToString();

  // Bitwise on every field including the trace. Online forecaster updates
  // are on (the default), so this fails unless the Adam moments and step
  // counter survived serialization exactly.
  EXPECT_TRUE(core::EngineResultsIdentical(*memory_run, *file_run));
  EXPECT_GT(memory_run->segments, 0u);
}

TEST(ModelIoTest, RejectsWrongMagic) {
  std::string bytes = Serialized();
  bytes[0] = 'X';
  auto loaded = DeserializeOfflineModel(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelIoTest, RejectsWrongVersion) {
  std::string bytes = Serialized();
  bytes[8] = static_cast<char>(kModelFormatVersion + 1);  // u32 version LSB
  auto loaded = DeserializeOfflineModel(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST(ModelIoTest, RejectsFlippedByteAnywhere) {
  std::string pristine = Serialized();
  // A corrupted byte anywhere in the payload must trip the checksum (or an
  // earlier structural check) — sample positions across the whole file.
  for (size_t pos = 16; pos < pristine.size(); pos += pristine.size() / 37) {
    std::string bytes = pristine;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x5a);
    auto loaded = DeserializeOfflineModel(bytes);
    EXPECT_FALSE(loaded.ok()) << "flip at " << pos << " was not detected";
  }
}

TEST(ModelIoTest, RejectsTruncationAtEveryBoundary) {
  std::string pristine = Serialized();
  // Every strict prefix is invalid (the checksum trailer is missing or the
  // chunk table is cut short). Sample a spread of truncation points plus
  // the pathological tiny ones.
  for (size_t keep : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{15},
                      size_t{16}, size_t{17}, pristine.size() / 3,
                      pristine.size() / 2, pristine.size() - 9,
                      pristine.size() - 1}) {
    std::string bytes = pristine.substr(0, keep);
    auto loaded = DeserializeOfflineModel(bytes);
    EXPECT_FALSE(loaded.ok()) << "truncation to " << keep << " accepted";
  }
}

// --- Crafted-file tests: structurally valid (checksummed) but hostile ------

/// FNV-1a-64, re-implemented so tests can forge files with valid trailers.
uint64_t TestFnv(const std::string& s, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(s[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Byte offset of the chunk with `tag` (pointing at the tag itself), and its
/// payload size; npos when absent.
size_t FindChunk(const std::string& bytes, const char* tag, uint64_t* size) {
  size_t pos = 16;
  while (pos + 12 <= bytes.size()) {
    uint64_t chunk_size = 0;
    std::memcpy(&chunk_size, bytes.data() + pos + 4, 8);
    if (std::memcmp(bytes.data() + pos, tag, 4) == 0) {
      *size = chunk_size;
      return pos;
    }
    pos += 12 + chunk_size;
  }
  return std::string::npos;
}

/// Replaces the trailing CSUM chunk with one matching the (tampered) body.
std::string WithRebuiltChecksum(std::string bytes) {
  uint64_t csum_size = 0;
  size_t csum_at = FindChunk(bytes, "CSUM", &csum_size);
  EXPECT_NE(csum_at, std::string::npos);
  bytes.resize(csum_at);
  uint64_t checksum = TestFnv(bytes, bytes.size());
  bytes.append("CSUM", 4);
  uint64_t payload_size = 8;
  bytes.append(reinterpret_cast<const char*>(&payload_size), 8);
  bytes.append(reinterpret_cast<const char*>(&checksum), 8);
  return bytes;
}

TEST(ModelIoTest, RejectsDuplicateChunkEvenWithValidChecksum) {
  std::string bytes = Serialized();
  uint64_t rtim_size = 0;
  size_t rtim_at = FindChunk(bytes, "RTIM", &rtim_size);
  ASSERT_NE(rtim_at, std::string::npos);
  std::string rtim_chunk = bytes.substr(rtim_at, 12 + rtim_size);
  bytes.insert(rtim_at, rtim_chunk);
  bytes = WithRebuiltChecksum(std::move(bytes));
  auto loaded = DeserializeOfflineModel(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("duplicate"), std::string::npos);
}

TEST(ModelIoTest, RejectsImpossibleCountsWithoutAllocating) {
  // A crafted-but-checksummed CATG chunk declaring absurd matrix shapes
  // must fail cleanly — not attempt the 2^63-row allocation. The CATG
  // payload starts with u32 backend, u64 rows, u64 cols.
  for (auto [rows, cols] :
       {std::pair<uint64_t, uint64_t>{1ull << 63, 4},
        {1ull << 62, 0},                  // zero-width rows, huge count
        {1, (1ull << 61) + 1}}) {         // cols * 8 wraps around
    std::string bytes = Serialized();
    uint64_t catg_size = 0;
    size_t catg_at = FindChunk(bytes, "CATG", &catg_size);
    ASSERT_NE(catg_at, std::string::npos);
    std::memcpy(&bytes[catg_at + 12 + 4], &rows, 8);
    std::memcpy(&bytes[catg_at + 12 + 4 + 8], &cols, 8);
    bytes = WithRebuiltChecksum(std::move(bytes));
    auto loaded = DeserializeOfflineModel(bytes);
    EXPECT_FALSE(loaded.ok()) << "rows=" << rows << " cols=" << cols;
  }
}

TEST(ModelIoTest, LoadMissingFileIsNotFound) {
  auto loaded = LoadOfflineModel("/nonexistent/sky_model.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ModelIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/sky_model_io_test.bin";
  Status saved = SaveOfflineModel(FittedModel(), path, "EV-COUNT");
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  std::string annotation;
  auto loaded = LoadOfflineModel(path, &annotation);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(annotation, "EV-COUNT");
  EXPECT_TRUE(core::OfflineModelsIdentical(FittedModel(), *loaded));
  std::remove(path.c_str());
}

TEST(ModelIoTest, InjectedWriteFailureLeavesExistingFileIntact) {
  std::string path = ::testing::TempDir() + "/sky_model_atomic_test.bin";
  ASSERT_TRUE(SaveOfflineModel(FittedModel(), path, "EV-COUNT").ok());
  std::string before = ReadWholeFile(path);
  ASSERT_FALSE(before.empty());

  // Fail the write after the temp file is populated but before the rename:
  // the publish step must never replace the old file with a partial one.
  SetAtomicWriteFaultHookForTest(
      [](const std::string&) { return Status::Internal("injected disk full"); });
  Status saved = SaveOfflineModel(FittedModel(), path, "OTHER-ANNOTATION");
  SetAtomicWriteFaultHookForTest(nullptr);
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kInternal);

  // Original bytes untouched, temp file cleaned up, model still loads.
  EXPECT_EQ(ReadWholeFile(path), before);
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::string annotation;
  auto loaded = LoadOfflineModel(path, &annotation);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(annotation, "EV-COUNT");

  // With the hook cleared the same save goes through.
  ASSERT_TRUE(SaveOfflineModel(FittedModel(), path, "OTHER-ANNOTATION").ok());
  annotation.clear();
  ASSERT_TRUE(LoadOfflineModel(path, &annotation).ok());
  EXPECT_EQ(annotation, "OTHER-ANNOTATION");
  std::remove(path.c_str());
}

// --- Facade paths ----------------------------------------------------------

TEST(ModelIoFacadeTest, SaveModelWithoutModelIsFailedPrecondition) {
  workloads::EvCountingWorkload job;
  api::Skyscraper sky(&job);
  Status st = sky.SaveModel(::testing::TempDir() + "/never_written.bin");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(ModelIoFacadeTest, LoadModelSubstitutesForFit) {
  std::string path = ::testing::TempDir() + "/sky_facade_test.bin";
  workloads::EvCountingWorkload job;
  api::Resources res;
  res.cores = 4;

  // Process 1: fit and persist.
  api::Skyscraper trainer(&job);
  trainer.SetResources(res);
  ASSERT_TRUE(trainer.Fit(FastOffline()).ok());
  ASSERT_TRUE(trainer.SaveModel(path, job.name()).ok());
  core::EngineOptions run;
  run.duration = Hours(12);
  auto fit_run = trainer.Ingest(Days(4), run);
  ASSERT_TRUE(fit_run.ok()) << fit_run.status().ToString();

  // Process 2: load instead of Fit — LoadModel before any RunOfflinePhase.
  api::Skyscraper server(&job);
  server.SetResources(res);
  EXPECT_FALSE(server.fitted());
  ASSERT_TRUE(server.LoadModel(path, job.name()).ok());
  EXPECT_TRUE(server.fitted());
  ASSERT_TRUE(server.model().ok());

  auto load_run = server.Ingest(Days(4), run);
  ASSERT_TRUE(load_run.ok()) << load_run.status().ToString();
  EXPECT_TRUE(core::EngineResultsIdentical(*fit_run, *load_run));
  std::remove(path.c_str());
}

TEST(ModelIoFacadeTest, FailedLoadKeepsPreviousModel) {
  std::string path = ::testing::TempDir() + "/sky_corrupt_test.bin";
  workloads::EvCountingWorkload job;
  api::Skyscraper sky(&job);
  api::Resources res;
  res.cores = 4;
  sky.SetResources(res);
  ASSERT_TRUE(sky.Fit(FastOffline()).ok());

  // Write a corrupted file and try to load it: the error must not disturb
  // the in-memory model (no partial state).
  ASSERT_TRUE(sky.SaveModel(path).ok());
  {
    std::string bytes = Serialized();
    bytes[bytes.size() / 2] ^= 0x11;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
  Status st = sky.LoadModel(path);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(sky.fitted());
  EXPECT_TRUE(sky.model().ok());

  // Annotation mismatch is likewise refused without clobbering the model —
  // and distinguishable from corruption: the file parsed, it is just a model
  // for a different job (kFailedPrecondition, not kInvalidArgument).
  ASSERT_TRUE(sky.SaveModel(path, "EV-COUNT").ok());
  Status mismatch = sky.LoadModel(path, "COVID");
  EXPECT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(sky.fitted());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sky::io
