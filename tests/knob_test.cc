#include "core/knob.h"

#include <gtest/gtest.h>

namespace sky::core {
namespace {

KnobSpace MakeSpace() {
  KnobSpace s;
  EXPECT_TRUE(s.AddKnob("fps", {30, 15, 5}).ok());
  EXPECT_TRUE(s.AddKnob("tiles", {1, 4}).ok());
  return s;
}

TEST(KnobSpaceTest, RegistrationAndLookup) {
  KnobSpace s = MakeSpace();
  EXPECT_EQ(s.NumKnobs(), 2u);
  EXPECT_EQ(s.NumConfigs(), 6u);
  auto idx = s.KnobIndex("tiles");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(s.KnobIndex("nope").ok());
}

TEST(KnobSpaceTest, RejectsBadKnobs) {
  KnobSpace s;
  EXPECT_FALSE(s.AddKnob("empty", {}).ok());
  EXPECT_TRUE(s.AddKnob("a", {1}).ok());
  EXPECT_FALSE(s.AddKnob("a", {2}).ok());
}

TEST(KnobSpaceTest, IdRoundTrip) {
  KnobSpace s = MakeSpace();
  for (size_t id = 0; id < s.NumConfigs(); ++id) {
    KnobConfig c = s.IdToConfig(id);
    EXPECT_EQ(s.ConfigToId(c), id);
    EXPECT_TRUE(s.ValidateConfig(c).ok());
  }
}

TEST(KnobSpaceTest, ValueAccess) {
  KnobSpace s = MakeSpace();
  KnobConfig c = {1, 0};  // fps=15, tiles=1
  EXPECT_DOUBLE_EQ(s.Value(c, 0), 15);
  auto v = s.ValueByName(c, "tiles");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 1);
  EXPECT_FALSE(s.ValueByName(c, "nope").ok());
}

TEST(KnobSpaceTest, AllConfigsEnumerates) {
  KnobSpace s = MakeSpace();
  std::vector<KnobConfig> all = s.AllConfigs();
  EXPECT_EQ(all.size(), 6u);
  // All distinct.
  std::set<size_t> ids;
  for (const KnobConfig& c : all) ids.insert(s.ConfigToId(c));
  EXPECT_EQ(ids.size(), 6u);
}

TEST(KnobSpaceTest, NeighborsAreOneStepMoves) {
  KnobSpace s = MakeSpace();
  // Corner config {0,0}: can only move up on each knob.
  std::vector<KnobConfig> n = s.Neighbors({0, 0});
  EXPECT_EQ(n.size(), 2u);
  // Middle config {1,0}: up/down on fps, up on tiles.
  n = s.Neighbors({1, 0});
  EXPECT_EQ(n.size(), 3u);
  for (const KnobConfig& nb : n) {
    size_t diff = 0;
    KnobConfig base = {1, 0};
    for (size_t i = 0; i < nb.size(); ++i) {
      diff += nb[i] != base[i] ? 1 : 0;
    }
    EXPECT_EQ(diff, 1u);
  }
}

TEST(KnobSpaceTest, ValidateConfigCatchesErrors) {
  KnobSpace s = MakeSpace();
  EXPECT_FALSE(s.ValidateConfig({0}).ok());
  EXPECT_FALSE(s.ValidateConfig({0, 9}).ok());
  EXPECT_TRUE(s.ValidateConfig({2, 1}).ok());
}

TEST(KnobSpaceTest, ToStringReadable) {
  KnobSpace s = MakeSpace();
  EXPECT_EQ(s.ToString({0, 1}), "fps=30, tiles=4");
}

TEST(KnobSpaceTest, EmptySpaceHasNoConfigs) {
  KnobSpace s;
  EXPECT_EQ(s.NumConfigs(), 0u);
}

}  // namespace
}  // namespace sky::core
