// Scratch diagnostic (not registered with ctest): prints the filtered
// configuration set, plan, and engine statistics for COVID on 4 cores.
#include <cstdio>

#include "baselines/static_baseline.h"
#include "core/engine.h"
#include "core/offline.h"
#include "workloads/covid.h"

using namespace sky;

int main() {
  workloads::CovidWorkload covid;
  sim::ClusterSpec cluster;
  cluster.cores = 4;
  sim::CostModel cost_model(1.8);
  core::OfflineOptions opts;
  opts.segment_seconds = 4.0;
  opts.train_horizon = Days(8);
  opts.num_categories = 3;
  opts.forecaster.input_span = Days(2);
  opts.forecaster.planned_interval = Days(2);
  auto model = core::RunOfflinePhase(covid, cluster, cost_model, opts);
  if (!model.ok()) {
    printf("offline failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  printf("filtered configs (%zu):\n", model->configs.size());
  for (size_t i = 0; i < model->configs.size(); ++i) {
    const auto& p = model->profiles[i];
    printf("  [%zu] %-40s cost=%6.2f onprem_rt=%6.2f min_rt=%6.2f #pl=%zu\n",
           i, covid.knob_space().ToString(model->configs[i]).c_str(),
           p.work_core_s_per_video_s, p.OnPremRuntime(), p.MinRuntime(),
           p.placements.size());
  }
  printf("category centers (3 x %zu):\n", model->configs.size());
  for (size_t c = 0; c < 3; ++c) {
    printf("  c%zu:", c);
    for (size_t k = 0; k < model->configs.size(); ++k) {
      printf(" %.2f", model->categories.CenterQuality(c, k));
    }
    printf("\n");
  }

  core::EngineOptions eopts;
  eopts.duration = Days(2);
  eopts.plan_interval = Days(2);
  eopts.cloud_budget_usd_per_interval = 3.0;
  core::IngestionEngine engine(&covid, &*model, cluster, &cost_model, eopts);
  auto result = engine.Run(Days(8));
  if (!result.ok()) {
    printf("engine failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  printf("sky: mean_q=%.3f work=%.0f onprem=%.0f cloud=$%.2f hw=%.2fGB "
         "switches=%zu degraded=%zu miscls=%.3f\n",
         result->mean_quality, result->work_core_seconds,
         result->onprem_core_seconds, result->cloud_usd,
         result->buffer_high_water_bytes / 1e9, result->switch_count,
         result->degraded_count, result->MisclassificationRate());

  auto st = baselines::BestStaticBaseline(covid, cluster, cost_model, 4.0,
                                          Days(2), Days(8));
  if (st.ok()) {
    printf("static: %-40s mean_q=%.3f work=%.0f\n",
           covid.knob_space().ToString(st->config).c_str(), st->mean_quality,
           st->work_core_seconds);
  }
  return 0;
}
