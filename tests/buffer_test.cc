#include "sim/buffer.h"

#include <gtest/gtest.h>

namespace sky::sim {
namespace {

TEST(BufferTest, PushPopAccounting) {
  VideoBuffer buf(100);
  EXPECT_TRUE(buf.Push(40).ok());
  EXPECT_TRUE(buf.Push(30).ok());
  EXPECT_EQ(buf.used_bytes(), 70u);
  EXPECT_EQ(buf.FreeBytes(), 30u);
  EXPECT_TRUE(buf.Pop(50).ok());
  EXPECT_EQ(buf.used_bytes(), 20u);
}

TEST(BufferTest, OverflowFailsWithoutMutation) {
  VideoBuffer buf(100);
  ASSERT_TRUE(buf.Push(90).ok());
  Status s = buf.Push(20);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(buf.used_bytes(), 90u);  // unchanged on failure
}

TEST(BufferTest, PopMoreThanBufferedFails) {
  VideoBuffer buf(100);
  ASSERT_TRUE(buf.Push(10).ok());
  EXPECT_FALSE(buf.Pop(20).ok());
  EXPECT_EQ(buf.used_bytes(), 10u);
}

TEST(BufferTest, HighWaterTracksPeak) {
  VideoBuffer buf(100);
  ASSERT_TRUE(buf.Push(60).ok());
  ASSERT_TRUE(buf.Pop(50).ok());
  ASSERT_TRUE(buf.Push(20).ok());
  EXPECT_EQ(buf.high_water_bytes(), 60u);
}

TEST(BufferTest, ExactCapacityFits) {
  VideoBuffer buf(100);
  EXPECT_TRUE(buf.Push(100).ok());
  EXPECT_EQ(buf.FreeBytes(), 0u);
  EXPECT_FALSE(buf.Push(1).ok());
}

TEST(BufferTest, ZeroCapacityRejectsEverything) {
  VideoBuffer buf(0);
  EXPECT_FALSE(buf.Push(1).ok());
  EXPECT_TRUE(buf.Push(0).ok());
  EXPECT_TRUE(buf.Empty());
}

TEST(BufferTest, ResetClearsState) {
  VideoBuffer buf(100);
  ASSERT_TRUE(buf.Push(80).ok());
  buf.Reset();
  EXPECT_TRUE(buf.Empty());
  EXPECT_EQ(buf.high_water_bytes(), 0u);
  EXPECT_TRUE(buf.Push(100).ok());
}

}  // namespace
}  // namespace sky::sim
