#include "core/multi_stream.h"

#include <gtest/gtest.h>

#include "ml/kmeans.h"

namespace sky::core {
namespace {

ContentCategories MakeCategories(double easy_gain, double hard_gain) {
  ml::KMeansModel km;
  km.centers = {{0.9, 0.9 + easy_gain},   // easy: small gain from upgrade
                {0.4, 0.4 + hard_gain}};  // hard: large gain from upgrade
  return ContentCategories::FromKMeans(std::move(km));
}

TEST(FairCoreShareTest, FloorsAndClamps) {
  EXPECT_EQ(FairCoreShare(8, 2), 4);
  EXPECT_EQ(FairCoreShare(8, 3), 2);
  EXPECT_EQ(FairCoreShare(2, 5), 1);  // at least one core
  EXPECT_EQ(FairCoreShare(8, 0), 8);
}

/// Joint-planner properties must hold on both backends: the structured MCKP
/// decomposition (default) and the dense joint-LP simplex oracle.
class JointPlannerTest : public ::testing::TestWithParam<PlannerBackend> {
 protected:
  PlannerBackend backend() const { return GetParam(); }
};

TEST_P(JointPlannerTest, SharedBudgetAllocatedAcrossStreams) {
  ContentCategories cats_a = MakeCategories(0.05, 0.5);
  ContentCategories cats_b = MakeCategories(0.05, 0.5);
  StreamPlanInput a{&cats_a, {0.5, 0.5}, {1.0, 6.0}};
  StreamPlanInput b{&cats_b, {0.5, 0.5}, {1.0, 6.0}};
  auto plans = ComputeJointKnobPlan({a, b}, 6.0, backend());
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 2u);
  double total_work = 0.0;
  for (const KnobPlan& p : *plans) {
    total_work += p.expected_work;
    for (size_t c = 0; c < 2; ++c) {
      double row = 0.0;
      for (size_t k = 0; k < 2; ++k) row += p.alpha.At(c, k);
      EXPECT_NEAR(row, 1.0, 1e-6);
    }
  }
  EXPECT_LE(total_work, 6.0 + 1e-6);
}

TEST_P(JointPlannerTest, BudgetFlowsToStreamWithMoreToGain) {
  // Stream A gains little from its expensive config; stream B gains a lot.
  ContentCategories cats_a = MakeCategories(0.02, 0.08);
  ContentCategories cats_b = MakeCategories(0.05, 0.55);
  StreamPlanInput a{&cats_a, {0.5, 0.5}, {1.0, 6.0}};
  StreamPlanInput b{&cats_b, {0.5, 0.5}, {1.0, 6.0}};
  auto plans = ComputeJointKnobPlan({a, b}, 2.0 + 3.5, backend());
  ASSERT_TRUE(plans.ok());
  // Expensive usage on B's hard category should exceed A's.
  EXPECT_GT((*plans)[1].alpha.At(1, 1), (*plans)[0].alpha.At(1, 1) + 0.2);
}

TEST_P(JointPlannerTest, MatchesSingleStreamPlannerWhenAlone) {
  ContentCategories cats = MakeCategories(0.05, 0.5);
  std::vector<double> forecast = {0.6, 0.4};
  std::vector<double> costs = {1.0, 6.0};
  auto single = ComputeKnobPlan(cats, forecast, costs, 3.0, backend());
  auto joint =
      ComputeJointKnobPlan({{&cats, forecast, costs}}, 3.0, backend());
  ASSERT_TRUE(single.ok() && joint.ok());
  EXPECT_NEAR(single->expected_quality, (*joint)[0].expected_quality, 1e-6);
}

TEST_P(JointPlannerTest, BackendsAgreeOnJointObjective) {
  ContentCategories cats_a = MakeCategories(0.02, 0.3);
  ContentCategories cats_b = MakeCategories(0.08, 0.6);
  std::vector<StreamPlanInput> streams = {
      {&cats_a, {0.7, 0.3}, {1.0, 5.0}},
      {&cats_b, {0.2, 0.8}, {1.5, 4.0}},
      {&cats_a, {0.5, 0.5}, {0.8, 7.0}}};
  for (double budget : {3.5, 6.0, 11.0, 40.0}) {
    auto structured =
        ComputeJointKnobPlan(streams, budget, PlannerBackend::kStructured);
    auto simplex =
        ComputeJointKnobPlan(streams, budget, PlannerBackend::kSimplex);
    ASSERT_TRUE(structured.ok() && simplex.ok());
    double q_structured = 0.0, q_simplex = 0.0;
    for (size_t v = 0; v < streams.size(); ++v) {
      q_structured += (*structured)[v].expected_quality;
      q_simplex += (*simplex)[v].expected_quality;
    }
    EXPECT_NEAR(q_structured, q_simplex, 1e-6) << "budget " << budget;
  }
}

TEST_P(JointPlannerTest, InfeasibleAndMalformedInputs) {
  ContentCategories cats = MakeCategories(0.05, 0.5);
  StreamPlanInput stream{&cats, {0.5, 0.5}, {2.0, 6.0}};
  auto too_tight = ComputeJointKnobPlan({stream, stream}, 1.0, backend());
  EXPECT_FALSE(too_tight.ok());
  EXPECT_EQ(too_tight.status().code(), StatusCode::kResourceExhausted);

  EXPECT_FALSE(ComputeJointKnobPlan({}, 5.0, backend()).ok());
  StreamPlanInput bad{&cats, {0.5}, {2.0, 6.0}};  // wrong forecast arity
  EXPECT_FALSE(ComputeJointKnobPlan({bad}, 5.0, backend()).ok());
  StreamPlanInput null_cats{nullptr, {0.5, 0.5}, {2.0, 6.0}};
  EXPECT_FALSE(ComputeJointKnobPlan({null_cats}, 5.0, backend()).ok());
}

TEST_P(JointPlannerTest, ScalesToManyStreams) {
  ContentCategories cats = MakeCategories(0.05, 0.5);
  std::vector<StreamPlanInput> streams(
      8, StreamPlanInput{&cats, {0.5, 0.5}, {1.0, 6.0}});
  auto plans = ComputeJointKnobPlan(streams, 20.0, backend());
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 8u);
  double total = 0.0;
  for (const KnobPlan& p : *plans) total += p.expected_work;
  EXPECT_LE(total, 20.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Backends, JointPlannerTest,
                         ::testing::Values(PlannerBackend::kStructured,
                                           PlannerBackend::kSimplex),
                         [](const auto& info) {
                           return info.param == PlannerBackend::kStructured
                                      ? "Structured"
                                      : "Simplex";
                         });

}  // namespace
}  // namespace sky::core
