#include "api/skyscraper.h"

#include <gtest/gtest.h>

#include "api/callback_workload.h"
#include "workloads/ev_counting.h"

namespace sky::api {
namespace {

core::OfflineOptions FastOffline() {
  core::OfflineOptions opts;
  opts.segment_seconds = 4.0;
  opts.train_horizon = Days(4);
  opts.num_categories = 3;
  opts.forecaster.input_span = Days(1);
  opts.forecaster.planned_interval = Days(1);
  return opts;
}

TEST(SkyscraperApiTest, IngestRequiresFit) {
  workloads::EvCountingWorkload job;
  Skyscraper sky(&job);
  auto result = sky.Ingest(Days(4));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SkyscraperApiTest, FacadePreconditionsBeforeFit) {
  workloads::EvCountingWorkload job;
  Skyscraper sky(&job);
  EXPECT_FALSE(sky.fitted());
  // model() is checked: no empty-optional dereference before Fit().
  auto model = sky.model();
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kFailedPrecondition);
  auto session = sky.StartIngest(Days(4));
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(sky.Fit(FastOffline()).ok());
  auto fitted_model = sky.model();
  ASSERT_TRUE(fitted_model.ok());
  EXPECT_GE((*fitted_model)->configs.size(), 3u);

  // SetResources invalidates the fit — and the precondition trips again.
  sky.SetResources(Resources{});
  EXPECT_FALSE(sky.model().ok());
}

TEST(SkyscraperApiTest, ExplicitEngineOptionsWinOverResources) {
  workloads::EvCountingWorkload job;
  Skyscraper sky(&job);
  Resources res;
  res.cores = 4;
  res.buffer_bytes = 4ull << 30;
  res.cloud_budget_usd_per_interval = 5.0;
  sky.SetResources(res);
  ASSERT_TRUE(sky.Fit(FastOffline()).ok());

  core::EngineOptions run;
  run.duration = Hours(12);
  run.plan_interval = Days(1);

  // Unset fields inherit the provisioned Resources: with a tiny buffer
  // forced below, the generous cloud budget is actually spent...
  core::EngineOptions small_buffer = run;
  small_buffer.buffer_bytes = 64ull << 20;  // explicit value is respected
  auto with_cloud = sky.Ingest(Days(4), small_buffer);
  ASSERT_TRUE(with_cloud.ok()) << with_cloud.status().ToString();
  EXPECT_LE(with_cloud->buffer_high_water_bytes, 64ull << 20);
  EXPECT_GT(with_cloud->cloud_usd, 0.0);
  EXPECT_LE(with_cloud->cloud_usd, 5.0 + 1e-9);

  // ...while an explicit 0.0 disables bursting despite the Resources
  // credits (the old 0.0-means-unset sentinel silently re-enabled it).
  core::EngineOptions no_cloud = small_buffer;
  no_cloud.cloud_budget_usd_per_interval = 0.0;
  auto without_cloud = sky.Ingest(Days(4), no_cloud);
  ASSERT_TRUE(without_cloud.ok());
  EXPECT_DOUBLE_EQ(without_cloud->cloud_usd, 0.0);
}

TEST(SkyscraperApiTest, MakeStreamJobPackagesTheFacadeForAFleet) {
  workloads::EvCountingWorkload cam_a(11);
  workloads::EvCountingWorkload cam_b(22);
  Skyscraper sky_a(&cam_a);
  Skyscraper sky_b(&cam_b);

  // Requires a fitted (or loaded) model, like every serving entry point.
  auto unfitted = sky_a.MakeStreamJob(Days(4));
  EXPECT_FALSE(unfitted.ok());
  EXPECT_EQ(unfitted.status().code(), StatusCode::kFailedPrecondition);

  Resources res;
  res.cores = 4;
  res.cloud_budget_usd_per_interval = 1.0;
  sky_a.SetResources(res);
  sky_b.SetResources(res);
  ASSERT_TRUE(sky_a.Fit(FastOffline()).ok());
  ASSERT_TRUE(sky_b.Fit(FastOffline()).ok());

  core::EngineOptions run;
  run.duration = Hours(12);
  run.plan_interval = Hours(4);
  auto job_a = sky_a.MakeStreamJob(Days(4), run);
  auto job_b = sky_b.MakeStreamJob(Days(4), run);
  ASSERT_TRUE(job_a.ok()) << job_a.status().ToString();
  ASSERT_TRUE(job_b.ok());
  // Unset provisioning fields resolve from the facade's Resources, exactly
  // like StartIngest.
  ASSERT_TRUE(job_a->options.cloud_budget_usd_per_interval.has_value());
  EXPECT_DOUBLE_EQ(*job_a->options.cloud_budget_usd_per_interval, 1.0);
  ASSERT_TRUE(job_a->options.buffer_bytes.has_value());
  EXPECT_EQ(*job_a->options.buffer_bytes, res.buffer_bytes);

  // The jobs drive a StreamSet; independently planned, the fleet must
  // reproduce each facade's own Ingest() bitwise.
  auto ingest_a = sky_a.Ingest(Days(4), run);
  auto ingest_b = sky_b.Ingest(Days(4), run);
  ASSERT_TRUE(ingest_a.ok() && ingest_b.ok());
  core::StreamSetOptions sopts;
  sopts.planning = core::MultiStreamPlanning::kIndependent;
  auto set = core::StreamSet::Create({*job_a, *job_b}, sopts);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_TRUE(set->RunToCompletion().ok());
  auto results = set->Results();
  ASSERT_TRUE(results[0].ok() && results[1].ok());
  EXPECT_TRUE(core::EngineResultsIdentical(*ingest_a, *results[0]));
  EXPECT_TRUE(core::EngineResultsIdentical(*ingest_b, *results[1]));
}

TEST(SkyscraperApiTest, SteppedSessionMatchesBatchIngestBitwise) {
  workloads::EvCountingWorkload job;
  Skyscraper sky(&job);
  Resources res;
  res.cores = 4;
  res.cloud_budget_usd_per_interval = 1.0;
  sky.SetResources(res);
  ASSERT_TRUE(sky.Fit(FastOffline()).ok());

  core::EngineOptions run;
  run.duration = Hours(12);
  run.plan_interval = Hours(4);
  run.record_trace = true;
  auto batch = sky.Ingest(Days(4), run);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  auto session = sky.StartIngest(Days(4), run);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_FALSE(session->Done());
  // Finish() refuses mid-run.
  EXPECT_EQ(session->Finish().status().code(),
            StatusCode::kFailedPrecondition);

  // Step a while, checkpoint, overrun, restore, and run to completion:
  // the result must equal the batch call on every field.
  ASSERT_TRUE(session->RunUntil(Days(4) + Hours(3)).ok());
  EXPECT_GT(session->Progress().segments, 0u);
  ASSERT_NE(session->CurrentPlan(), nullptr);
  auto saved = session->Checkpoint();
  ASSERT_TRUE(saved.ok());
  EXPECT_DOUBLE_EQ(saved->captured_at, Days(4) + Hours(3));
  ASSERT_TRUE(session->RunUntil(Days(4) + Hours(7)).ok());
  ASSERT_TRUE(session->Restore(*saved).ok());
  auto final = session->RunToCompletion();
  ASSERT_TRUE(final.ok());
  EXPECT_TRUE(session->Done());
  EXPECT_TRUE(core::EngineResultsIdentical(*batch, *final));
  // Finish() now hands out the same result.
  auto finished = session->Finish();
  ASSERT_TRUE(finished.ok());
  EXPECT_TRUE(core::EngineResultsIdentical(*batch, *finished));
}

TEST(SkyscraperApiTest, FitThenIngestEndToEnd) {
  workloads::EvCountingWorkload job;
  Skyscraper sky(&job);
  Resources res;
  res.cores = 4;
  res.buffer_bytes = 4ull << 30;
  res.cloud_budget_usd_per_interval = 1.0;
  sky.SetResources(res);
  ASSERT_TRUE(sky.Fit(FastOffline()).ok());
  EXPECT_TRUE(sky.fitted());

  core::EngineOptions run;
  run.duration = Hours(12);
  run.plan_interval = Days(1);
  auto result = sky.Ingest(Days(4), run);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->mean_quality, 0.4);
  EXPECT_EQ(result->overflow_events, 0u);
}

TEST(SkyscraperApiTest, SetResourcesInvalidatesFit) {
  workloads::EvCountingWorkload job;
  Skyscraper sky(&job);
  Resources res;
  res.cores = 4;
  sky.SetResources(res);
  ASSERT_TRUE(sky.Fit(FastOffline()).ok());
  res.cores = 8;
  sky.SetResources(res);
  EXPECT_FALSE(sky.fitted());
}

TEST(CallbackWorkloadTest, RoutesCallbacks) {
  video::DiurnalContentProcess::Options copts;
  copts.horizon = Days(2);
  copts.seed = 5;
  video::DiurnalContentProcess content(copts);

  core::KnobSpace space;
  ASSERT_TRUE(space.AddKnob("rate", {1, 2, 4}).ok());

  CallbackWorkload job(
      "custom", std::move(space), &content,
      [](const core::KnobConfig& k) { return 1.0 + 2.0 * k[0]; },
      [](const core::KnobConfig& k, const video::ContentState& c) {
        return std::clamp(1.0 - (1.0 - k[0] / 2.0) * c.density, 0.0, 1.0);
      });
  EXPECT_EQ(job.name(), "custom");
  EXPECT_DOUBLE_EQ(job.CostCoreSecondsPerVideoSecond({2}), 5.0);
  video::ContentState dense;
  dense.density = 1.0;
  EXPECT_NEAR(job.TrueQuality({0}, dense), 0.0, 1e-12);
  EXPECT_NEAR(job.TrueQuality({2}, dense), 1.0, 1e-12);

  sim::CostModel cm(1.8);
  dag::TaskGraph g = job.BuildTaskGraph({1}, 4.0, cm);
  EXPECT_EQ(g.NumNodes(), 1u);
  EXPECT_NEAR(g.TotalOnPremWork(), 3.0 * 4.0, 1e-9);
}

TEST(CallbackWorkloadTest, WorksWithFullPipeline) {
  video::DiurnalContentProcess::Options copts;
  copts.horizon = Days(4);
  copts.seed = 6;
  video::DiurnalContentProcess content(copts);

  core::KnobSpace space;
  ASSERT_TRUE(space.AddKnob("effort", {0, 1, 2, 3}).ok());
  CallbackWorkload job(
      "pipeline", std::move(space), &content,
      [](const core::KnobConfig& k) { return 0.3 + 1.5 * k[0]; },
      [](const core::KnobConfig& k, const video::ContentState& c) {
        double penalty = (1.0 - k[0] / 3.0) * (0.1 + 0.8 * c.occlusion);
        return std::clamp(1.0 - penalty, 0.0, 1.0);
      });
  Skyscraper sky(&job);
  Resources res;
  res.cores = 2;
  sky.SetResources(res);
  core::OfflineOptions opts = FastOffline();
  opts.train_horizon = Days(3);
  ASSERT_TRUE(sky.Fit(opts).ok());
  core::EngineOptions run;
  run.duration = Hours(6);
  run.plan_interval = Hours(6);
  auto result = sky.Ingest(Days(3), run);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->segments, 0u);
}

}  // namespace
}  // namespace sky::api
