#include "sim/cost_model.h"

#include <gtest/gtest.h>

namespace sky::sim {
namespace {

TEST(CostModelTest, CatalogMatchesPaper) {
  const auto& catalog = ServerCatalog();
  ASSERT_EQ(catalog.size(), 5u);
  EXPECT_EQ(catalog[0].name, "e2-standard-4");
  EXPECT_EQ(catalog[0].vcpus, 4);
  EXPECT_DOUBLE_EQ(catalog[0].usd_per_hour, 0.14);
  EXPECT_EQ(catalog[4].name, "c2-standard-60");
  EXPECT_EQ(catalog[4].vcpus, 60);
  EXPECT_DOUBLE_EQ(catalog[4].usd_per_hour, 2.51);
}

TEST(CostModelTest, ServerByVcpus) {
  auto s = ServerByVcpus(16);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->name, "e2-standard-16");
  EXPECT_FALSE(ServerByVcpus(7).ok());
}

TEST(CostModelTest, OnPremCostDividesByRatio) {
  CostModel model(1.8);
  ServerType s{"x", 4, 0.18};
  // 10 hours at $0.18/h, divided by the 1.8 TCO ratio -> $1.
  EXPECT_NEAR(model.OnPremCost(s, 10.0), 1.0, 1e-12);
}

TEST(CostModelTest, Table2CostReproduction) {
  // Table 2: an e2-standard-4 over 8 days costs $14.9 total.
  CostModel model(1.8);
  auto server = ServerByVcpus(4);
  ASSERT_TRUE(server.ok());
  EXPECT_NEAR(model.OnPremCost(*server, 8 * 24.0), 14.9, 0.05);
  // And c2-standard-60 costs ~$267.7.
  auto big = ServerByVcpus(60);
  ASSERT_TRUE(big.ok());
  EXPECT_NEAR(model.OnPremCost(*big, 8 * 24.0), 267.7, 0.5);
}

TEST(CostModelTest, UsdCoreSecondRoundTrip) {
  CostModel model(1.8);
  double usd = 3.0;
  EXPECT_NEAR(model.CoreSecondsToUsd(model.UsdToCoreSeconds(usd)), usd,
              1e-9);
  EXPECT_GT(model.UsdToCoreSeconds(1.0), 0.0);
}

TEST(CostModelTest, CloudRateScalesWithRatio) {
  CostModel cheap(1.0);
  CostModel expensive(2.5);
  EXPECT_NEAR(expensive.CloudUsdPerCoreSecond() /
                  expensive.OnPremUsdPerCoreSecond(),
              2.5, 1e-9);
  EXPECT_NEAR(cheap.CloudUsdPerCoreSecond() /
                  cheap.OnPremUsdPerCoreSecond(),
              1.0, 1e-9);
}

}  // namespace
}  // namespace sky::sim
