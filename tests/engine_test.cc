#include "core/engine.h"

#include <gtest/gtest.h>

#include "video/stream_source.h"
#include "workloads/ev_counting.h"

namespace sky::core {
namespace {

/// Shared fixture: one offline fit on the EV workload (small but real), a
/// 4-core server. Reused across tests to keep the suite fast.
class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new workloads::EvCountingWorkload();
    cluster_.cores = 4;
    cost_model_ = new sim::CostModel(1.8);
    OfflineOptions opts;
    opts.segment_seconds = 4.0;
    opts.train_horizon = Days(6);
    opts.num_categories = 3;
    opts.forecaster.input_span = Days(1);
    opts.forecaster.planned_interval = Days(1);
    auto model = RunOfflinePhase(*workload_, cluster_, *cost_model_, opts);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new OfflineModel(std::move(*model));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete cost_model_;
    delete workload_;
  }

  static EngineOptions BaseOptions() {
    EngineOptions opts;
    opts.duration = Days(1);
    opts.plan_interval = Days(1);
    opts.cloud_budget_usd_per_interval = 2.0;
    opts.buffer_bytes = 4ull << 30;
    return opts;
  }

  static workloads::EvCountingWorkload* workload_;
  static sim::ClusterSpec cluster_;
  static sim::CostModel* cost_model_;
  static OfflineModel* model_;
};

workloads::EvCountingWorkload* EngineTest::workload_ = nullptr;
sim::ClusterSpec EngineTest::cluster_;
sim::CostModel* EngineTest::cost_model_ = nullptr;
OfflineModel* EngineTest::model_ = nullptr;

TEST_F(EngineTest, OfflineModelIsComplete) {
  EXPECT_GE(model_->configs.size(), 3u);
  EXPECT_EQ(model_->profiles.size(), model_->configs.size());
  EXPECT_EQ(model_->categories.NumCategories(), 3u);
  EXPECT_TRUE(model_->forecaster.has_value());
  EXPECT_FALSE(model_->train_category_sequence.empty());
  for (const ConfigProfile& p : model_->profiles) {
    EXPECT_FALSE(p.placements.empty());
    EXPECT_GT(p.work_core_s_per_video_s, 0.0);
  }
}

TEST_F(EngineTest, RunsWithoutOverflowAndProducesQuality) {
  IngestionEngine engine(workload_, model_, cluster_, cost_model_,
                         BaseOptions());
  auto result = engine.Run(Days(6));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->overflow_events, 0u);
  EXPECT_GT(result->segments, 20000u);
  EXPECT_GT(result->mean_quality, 0.5);
  EXPECT_LE(result->mean_quality, 1.0);
  EXPECT_GT(result->switch_count, 10u);
  EXPECT_LE(result->buffer_high_water_bytes, *BaseOptions().buffer_bytes);
}

TEST_F(EngineTest, AdaptiveBeatsBestRealTimeStaticOnQualityPerWork) {
  IngestionEngine engine(workload_, model_, cluster_, cost_model_,
                         BaseOptions());
  auto result = engine.Run(Days(6));
  ASSERT_TRUE(result.ok());
  // Best static config that fits 4 cores in real time.
  double best_static_quality = 0.0;
  video::StreamSource source(&workload_->content_process(), 4.0);
  for (const ConfigProfile& p : model_->profiles) {
    if (p.OnPremRuntime() > 4.0) continue;
    double q = 0.0;
    for (int64_t i = 0; i < static_cast<int64_t>(result->segments); ++i) {
      q += workload_->TrueQuality(
          p.config, source.Segment(static_cast<int64_t>(Days(6) / 4.0) + i)
                        .content);
    }
    best_static_quality = std::max(best_static_quality, q);
  }
  EXPECT_GT(result->total_quality, best_static_quality);
}

TEST_F(EngineTest, BufferDisabledNeverLags) {
  EngineOptions opts = BaseOptions();
  opts.enable_buffer = false;
  opts.enable_cloud = false;
  IngestionEngine engine(workload_, model_, cluster_, cost_model_, opts);
  auto result = engine.Run(Days(6));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->buffer_high_water_bytes, 0u);
  EXPECT_DOUBLE_EQ(result->cloud_usd, 0.0);
}

TEST_F(EngineTest, CloudSpendRespectsBudget) {
  EngineOptions opts = BaseOptions();
  opts.cloud_budget_usd_per_interval = 0.5;
  opts.buffer_bytes = 64ull << 20;  // small buffer forces cloud usage
  IngestionEngine engine(workload_, model_, cluster_, cost_model_, opts);
  auto result = engine.Run(Days(6));
  ASSERT_TRUE(result.ok());
  // One planned interval in this run: spend bounded by the budget.
  EXPECT_LE(result->cloud_usd, 0.5 + 1e-9);
}

TEST_F(EngineTest, GroundTruthTogglesImproveAccuracy) {
  EngineOptions standard = BaseOptions();
  EngineOptions truth = BaseOptions();
  truth.use_ground_truth_categories = true;
  IngestionEngine e1(workload_, model_, cluster_, cost_model_, standard);
  IngestionEngine e2(workload_, model_, cluster_, cost_model_, truth);
  auto r1 = e1.Run(Days(6));
  auto r2 = e2.Run(Days(6));
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_GT(r1->misclassified, 0u);
  EXPECT_EQ(r2->misclassified, 0u);
  EXPECT_GE(r2->total_quality, r1->total_quality * 0.98);
}

TEST_F(EngineTest, GroundTruthForecastUsesLookaheadRing) {
  // The ground-truth-forecast lookahead classifies a whole interval ahead
  // through the truth ring; the ingest loop must then read those same slots
  // back. A forecast of the realized distribution can only help the plan.
  EngineOptions opts = BaseOptions();
  opts.use_ground_truth_forecast = true;
  IngestionEngine truth_engine(workload_, model_, cluster_, cost_model_,
                               opts);
  IngestionEngine std_engine(workload_, model_, cluster_, cost_model_,
                             BaseOptions());
  auto truth = truth_engine.Run(Days(6));
  auto standard = std_engine.Run(Days(6));
  ASSERT_TRUE(truth.ok() && standard.ok());
  EXPECT_EQ(truth->segments, standard->segments);
  EXPECT_GE(truth->total_quality, standard->total_quality * 0.98);
  EXPECT_EQ(truth->type_a_errors + truth->type_b_errors,
            truth->misclassified);
}

TEST_F(EngineTest, SimplexBackendMatchesStructuredEndToEnd) {
  // The two planner backends return the same optimum, so a full ingestion
  // run must be identical on both (same plans -> same switch decisions).
  EngineOptions simplex_opts = BaseOptions();
  simplex_opts.planner_backend = PlannerBackend::kSimplex;
  IngestionEngine structured(workload_, model_, cluster_, cost_model_,
                             BaseOptions());
  IngestionEngine simplex(workload_, model_, cluster_, cost_model_,
                          simplex_opts);
  auto rs = structured.Run(Days(6));
  auto rx = simplex.Run(Days(6));
  ASSERT_TRUE(rs.ok() && rx.ok());
  EXPECT_NEAR(rs->total_quality, rx->total_quality,
              1e-6 * rs->total_quality);
  EXPECT_EQ(rs->switch_count, rx->switch_count);
  EXPECT_EQ(rs->misclassified, rx->misclassified);
}

TEST_F(EngineTest, NoTypeBLeavesOnlyTypeAErrors) {
  EngineOptions opts = BaseOptions();
  opts.eliminate_type_b_errors = true;
  IngestionEngine engine(workload_, model_, cluster_, cost_model_, opts);
  auto result = engine.Run(Days(6));
  ASSERT_TRUE(result.ok());
  // Misclassification should drop well below the standard switcher's.
  EngineOptions std_opts = BaseOptions();
  IngestionEngine std_engine(workload_, model_, cluster_, cost_model_,
                             std_opts);
  auto std_result = std_engine.Run(Days(6));
  ASSERT_TRUE(std_result.ok());
  EXPECT_LT(result->MisclassificationRate(),
            std_result->MisclassificationRate());
}

TEST_F(EngineTest, ErrorTaxonomySumsToMisclassified) {
  IngestionEngine engine(workload_, model_, cluster_, cost_model_,
                         BaseOptions());
  auto result = engine.Run(Days(6));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->type_a_errors + result->type_b_errors,
            result->misclassified);
}

TEST_F(EngineTest, TraceRecordsFig3Series) {
  EngineOptions opts = BaseOptions();
  opts.record_trace = true;
  opts.trace_resolution_s = 600.0;
  IngestionEngine engine(workload_, model_, cluster_, cost_model_, opts);
  auto result = engine.Run(Days(6));
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->trace.size(), 100u);
  for (const TracePoint& p : result->trace) {
    EXPECT_GE(p.quality, 0.0);
    EXPECT_LE(p.quality, 1.0);
    EXPECT_GE(p.work_core_s_per_s, 0.0);
    EXPECT_GE(p.buffer_bytes, 0.0);
  }
  // Cumulative cloud spend is monotone.
  for (size_t i = 1; i < result->trace.size(); ++i) {
    EXPECT_GE(result->trace[i].cloud_usd_cumulative,
              result->trace[i - 1].cloud_usd_cumulative);
  }
}

TEST_F(EngineTest, WorkBudgetOverrideCapsPlannedWork) {
  EngineOptions opts = BaseOptions();
  opts.work_budget_override = 1.0;  // far below 4 cores
  IngestionEngine tight(workload_, model_, cluster_, cost_model_, opts);
  opts.work_budget_override = 100.0;
  IngestionEngine loose(workload_, model_, cluster_, cost_model_, opts);
  auto r_tight = tight.Run(Days(6));
  auto r_loose = loose.Run(Days(6));
  ASSERT_TRUE(r_tight.ok() && r_loose.ok());
  EXPECT_LT(r_tight->work_core_seconds, r_loose->work_core_seconds);
  EXPECT_LE(r_tight->total_quality, r_loose->total_quality + 1e-9);
}

TEST_F(EngineTest, F32ForecastPrecisionStaysWithinObjectiveTolerance) {
  // The reduced-precision knob only changes the plan-boundary forecast
  // forward pass. Forecasts feed the knob planner, so tiny f32 rounding can
  // flip a marginal plan choice — the contract is an objective-level bound,
  // not bitwise identity: mean ingest quality within 1% of the f64 run
  // (docs/precision.md). Everything else (training, online updates, noise
  // stream) is bit-identical between the two runs.
  EngineOptions f32 = BaseOptions();
  f32.forecast_precision = ml::Precision::kF32;
  IngestionEngine engine_f64(workload_, model_, cluster_, cost_model_,
                             BaseOptions());
  IngestionEngine engine_f32(workload_, model_, cluster_, cost_model_, f32);
  auto r64 = engine_f64.Run(Days(6));
  auto r32 = engine_f32.Run(Days(6));
  ASSERT_TRUE(r64.ok() && r32.ok());
  EXPECT_EQ(r32->overflow_events, 0u);
  EXPECT_NEAR(r32->mean_quality, r64->mean_quality,
              0.01 * r64->mean_quality);
}

TEST_F(EngineTest, DefaultPrecisionIsF64AndBitwiseStable) {
  // Guards the default: an engine with untouched options must behave as if
  // the knob did not exist (kF64 routes to the exact pre-knob code path).
  EngineOptions opts = BaseOptions();
  ASSERT_EQ(opts.forecast_precision, ml::Precision::kF64);
  IngestionEngine a(workload_, model_, cluster_, cost_model_, opts);
  EngineOptions explicit_f64 = BaseOptions();
  explicit_f64.forecast_precision = ml::Precision::kF64;
  IngestionEngine b(workload_, model_, cluster_, cost_model_, explicit_f64);
  auto ra = a.Run(Days(6));
  auto rb = b.Run(Days(6));
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_DOUBLE_EQ(ra->total_quality, rb->total_quality);
  EXPECT_EQ(ra->switch_count, rb->switch_count);
}

TEST_F(EngineTest, DeterministicGivenSeed) {
  IngestionEngine a(workload_, model_, cluster_, cost_model_, BaseOptions());
  IngestionEngine b(workload_, model_, cluster_, cost_model_, BaseOptions());
  auto ra = a.Run(Days(6));
  auto rb = b.Run(Days(6));
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_DOUBLE_EQ(ra->total_quality, rb->total_quality);
  EXPECT_EQ(ra->switch_count, rb->switch_count);
  EXPECT_DOUBLE_EQ(ra->cloud_usd, rb->cloud_usd);
}

}  // namespace
}  // namespace sky::core
