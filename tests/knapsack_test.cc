#include "lp/knapsack.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sky::lp {
namespace {

TEST(GreedyKnapsackTest, TakesDensestItems) {
  KnapsackSolution sol =
      GreedyKnapsack({10, 6, 1}, {5, 3, 4}, 8.0);
  EXPECT_TRUE(sol.taken[0]);
  EXPECT_TRUE(sol.taken[1]);
  EXPECT_FALSE(sol.taken[2]);
  EXPECT_DOUBLE_EQ(sol.total_value, 16.0);
}

TEST(GreedyKnapsackTest, BestSingleItemFallback) {
  // Density-greedy would take the two small items (value 2) and miss the
  // big one (value 10); the 1/2-approximation guard must pick the big one.
  KnapsackSolution sol = GreedyKnapsack({1, 1, 10}, {1, 1, 10}, 10.0);
  EXPECT_DOUBLE_EQ(sol.total_value, 10.0);
}

TEST(ExactKnapsackTest, MatchesKnownOptimum) {
  auto sol = ExactKnapsack({60, 100, 120}, {10, 20, 30}, 50.0, 1000);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->total_value, 220.0);  // items 1 and 2
  EXPECT_FALSE(sol->taken[0]);
}

TEST(ExactKnapsackTest, RespectsCapacityAndRejectsBadInput) {
  auto sol = ExactKnapsack({5, 5}, {3, 3}, 3.0, 300);
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->total_weight, 3.0 + 1e-9);
  EXPECT_DOUBLE_EQ(sol->total_value, 5.0);
  EXPECT_FALSE(ExactKnapsack({1}, {1, 2}, 3.0).ok());
  EXPECT_FALSE(ExactKnapsack({1}, {-1}, 3.0).ok());
  EXPECT_FALSE(ExactKnapsack({1}, {1}, -3.0).ok());
}

TEST(McKnapsackTest, PicksCheapestWhenBudgetTight) {
  // Two groups, options (weight, value): {(1, 1), (10, 10)} each; budget 2
  // forces cheapest everywhere.
  auto sol = MultipleChoiceKnapsackGreedy({{1, 10}, {1, 10}},
                                          {{1, 10}, {1, 10}}, 2.0);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->choice[0], 0u);
  EXPECT_EQ(sol->choice[1], 0u);
}

TEST(McKnapsackTest, UpgradesBestRatioFirst) {
  // Group 0 upgrade: +9 value for +9 weight (ratio 1). Group 1 upgrade:
  // +5 value for +2 weight (ratio 2.5). Budget allows only one upgrade.
  auto sol = MultipleChoiceKnapsackGreedy({{1, 10}, {1, 6}},
                                          {{1, 10}, {1, 3}}, 5.0);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->choice[0], 0u);
  EXPECT_EQ(sol->choice[1], 1u);
  EXPECT_DOUBLE_EQ(sol->total_value, 7.0);
}

TEST(McKnapsackTest, InfeasibleWhenCheapestTooHeavy) {
  auto sol =
      MultipleChoiceKnapsackGreedy({{1.0}}, {{5.0}}, 2.0);
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kResourceExhausted);
}

TEST(McKnapsackTest, RejectsEmptyGroup) {
  EXPECT_FALSE(MultipleChoiceKnapsackGreedy({{}}, {{}}, 2.0).ok());
  EXPECT_FALSE(MultipleChoiceKnapsackGreedy({{1.0}}, {}, 2.0).ok());
}

TEST(McKnapsackTest, FullBudgetTakesBestOptionPerGroup) {
  auto sol = MultipleChoiceKnapsackGreedy(
      {{0.2, 0.9, 0.5}, {0.1, 0.7, 1.0}},
      {{1, 5, 3}, {1, 4, 9}}, 1000.0);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->total_value, 0.9 + 1.0);
}

// Property sweep: greedy multiple-choice solution always feasible, always
// at least as good as the all-cheapest selection, never better than the
// all-best selection.
class McKnapsackSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(McKnapsackSweep, BoundsHold) {
  sky::Rng rng(GetParam());
  size_t groups = 3 + static_cast<size_t>(rng.UniformInt(0, 20));
  std::vector<std::vector<double>> values(groups), weights(groups);
  double min_weight_total = 0.0, max_value_total = 0.0, min_value_total = 0.0;
  for (size_t g = 0; g < groups; ++g) {
    size_t options = 1 + static_cast<size_t>(rng.UniformInt(0, 5));
    double best_v = 0.0, cheap_w = 1e18, cheap_v = 0.0;
    for (size_t o = 0; o < options; ++o) {
      double w = rng.Uniform(0.1, 5.0);
      double v = rng.Uniform(0.0, 1.0);
      values[g].push_back(v);
      weights[g].push_back(w);
      best_v = std::max(best_v, v);
      if (w < cheap_w) {
        cheap_w = w;
        cheap_v = v;
      }
    }
    min_weight_total += cheap_w;
    max_value_total += best_v;
    min_value_total += cheap_v;
  }
  double capacity = min_weight_total * rng.Uniform(1.0, 3.0);
  auto sol = MultipleChoiceKnapsackGreedy(values, weights, capacity);
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->total_weight, capacity + 1e-9);
  EXPECT_GE(sol->total_value, min_value_total - 1e-9);
  EXPECT_LE(sol->total_value, max_value_total + 1e-9);
  for (size_t g = 0; g < groups; ++g) {
    EXPECT_LT(sol->choice[g], values[g].size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McKnapsackSweep,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace sky::lp
