#include "core/forecaster.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace sky::core {
namespace {

/// A synthetic category sequence with a deterministic diurnal structure:
/// category 0 at "night", category 1 at "day", category 2 in randomly
/// placed short bursts.
std::vector<size_t> DiurnalCategories(double segment_seconds, double days,
                                      uint64_t seed) {
  Rng rng(seed);
  size_t per_day = static_cast<size_t>(Days(1) / segment_seconds);
  size_t n = static_cast<size_t>(days * per_day);
  std::vector<size_t> seq(n, 0);
  for (size_t i = 0; i < n; ++i) {
    double hour = HourOfDay(i * segment_seconds);
    seq[i] = (hour > 8 && hour < 20) ? 1 : 0;
    if (rng.Bernoulli(0.05)) seq[i] = 2;
  }
  return seq;
}

ForecasterOptions FastOptions() {
  ForecasterOptions opts;
  opts.input_span = Days(1);
  opts.input_splits = 4;
  opts.planned_interval = Days(1);
  opts.training_stride = Minutes(30);
  opts.train_options.epochs = 30;
  return opts;
}

TEST(ForecastDatasetTest, ShapesAndNormalization) {
  std::vector<size_t> seq = DiurnalCategories(60.0, 4, 1);
  ForecasterOptions opts = FastOptions();
  auto data = BuildForecastDataset(seq, 60.0, 3, opts);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->inputs.cols(), 4u * 3);
  EXPECT_EQ(data->targets.cols(), 3u);
  EXPECT_GT(data->inputs.rows(), 50u);
  // Every target row is a distribution.
  for (size_t r = 0; r < data->targets.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 3; ++c) sum += data->targets.At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ForecastDatasetTest, RejectsTooShortSequences) {
  ForecasterOptions opts = FastOptions();
  std::vector<size_t> tiny(10, 0);
  EXPECT_FALSE(BuildForecastDataset(tiny, 60.0, 3, opts).ok());
  EXPECT_FALSE(BuildForecastDataset(tiny, 60.0, 0, opts).ok());
  EXPECT_FALSE(BuildForecastDataset(tiny, -1.0, 3, opts).ok());
}

TEST(CategoryHistogramTest, CountsAndNormalizes) {
  std::vector<size_t> seq = {0, 0, 1, 2, 2, 2};
  std::vector<double> h = CategoryHistogram(seq, 0, 6, 3);
  EXPECT_NEAR(h[0], 2.0 / 6, 1e-12);
  EXPECT_NEAR(h[2], 3.0 / 6, 1e-12);
  // Out-of-range end is clamped.
  std::vector<double> h2 = CategoryHistogram(seq, 4, 100, 3);
  EXPECT_NEAR(h2[2], 1.0, 1e-12);
}

TEST(ForecasterTest, LearnsStationaryDistribution) {
  std::vector<size_t> seq = DiurnalCategories(60.0, 8, 2);
  ForecasterOptions opts = FastOptions();
  auto forecaster = Forecaster::Train(seq, 60.0, 3, opts);
  ASSERT_TRUE(forecaster.ok());

  // Forecast from the tail of the training data; the diurnal mix is stable
  // day over day, so the forecast should match the overall distribution.
  std::vector<double> features = forecaster->FeaturesFromHistory(seq, 60.0);
  std::vector<double> pred = forecaster->Forecast(features);
  std::vector<double> actual = CategoryHistogram(seq, 0, seq.size(), 3);
  ASSERT_EQ(pred.size(), 3u);
  EXPECT_LT(MeanAbsoluteError(pred, actual), 0.08);
}

TEST(ForecasterTest, EvaluateMaeSmallOnHeldOutData) {
  std::vector<size_t> train = DiurnalCategories(60.0, 8, 3);
  std::vector<size_t> test = DiurnalCategories(60.0, 4, 99);
  ForecasterOptions opts = FastOptions();
  auto forecaster = Forecaster::Train(train, 60.0, 3, opts);
  ASSERT_TRUE(forecaster.ok());
  auto mae = forecaster->EvaluateMae(test, 60.0);
  ASSERT_TRUE(mae.ok());
  EXPECT_LT(*mae, 0.1);  // paper reports 0.04-0.15 at paper scales
}

TEST(ForecasterTest, FeaturesAreSplitHistograms) {
  std::vector<size_t> seq(2880, 0);  // 2 days at 60 s, all category 0
  ForecasterOptions opts = FastOptions();
  auto forecaster = Forecaster::Train(DiurnalCategories(60.0, 6, 4), 60.0, 3,
                                      opts);
  ASSERT_TRUE(forecaster.ok());
  std::vector<double> f = forecaster->FeaturesFromHistory(seq, 60.0);
  ASSERT_EQ(f.size(), 4u * 3);
  for (size_t split = 0; split < 4; ++split) {
    EXPECT_NEAR(f[split * 3 + 0], 1.0, 1e-9);
    EXPECT_NEAR(f[split * 3 + 1], 0.0, 1e-9);
  }
}

TEST(ForecastDatasetTest, PoolAndSerialBuildsAreBitIdentical) {
  std::vector<size_t> seq = DiurnalCategories(60.0, 6, 12);
  ForecasterOptions opts = FastOptions();
  auto serial = BuildForecastDataset(seq, 60.0, 3, opts);
  ASSERT_TRUE(serial.ok());
  dag::ThreadPool pool(3);
  opts.pool = &pool;
  auto pooled = BuildForecastDataset(seq, 60.0, 3, opts);
  ASSERT_TRUE(pooled.ok());
  EXPECT_EQ(serial->inputs.data(), pooled->inputs.data());
  EXPECT_EQ(serial->targets.data(), pooled->targets.data());
}

TEST(ForecastDatasetTest, PrefixWindowsMatchScannedHistograms) {
  // BuildForecastDataset emits prefix-sum window histograms; they must be
  // bit-identical to scanning each window with CategoryHistogram.
  std::vector<size_t> seq = DiurnalCategories(60.0, 4, 13);
  ForecasterOptions opts = FastOptions();
  auto data = BuildForecastDataset(seq, 60.0, 3, opts);
  ASSERT_TRUE(data.ok());
  size_t in_segs = static_cast<size_t>(opts.input_span / 60.0);
  size_t out_segs = static_cast<size_t>(opts.planned_interval / 60.0);
  size_t stride = static_cast<size_t>(opts.training_stride / 60.0);
  for (size_t row = 0; row < data->targets.rows(); row += 7) {
    size_t s = in_segs + row * stride;
    std::vector<double> target = CategoryHistogram(seq, s, s + out_segs, 3);
    EXPECT_EQ(data->targets.Row(row), target) << "row " << row;
  }
}

TEST(ForecasterTest, ForecastIntoMatchesForecastBitwise) {
  std::vector<size_t> seq = DiurnalCategories(60.0, 6, 8);
  ForecasterOptions opts = FastOptions();
  auto forecaster = Forecaster::Train(seq, 60.0, 3, opts);
  ASSERT_TRUE(forecaster.ok());
  std::vector<double> features = forecaster->FeaturesFromHistory(seq, 60.0);
  std::vector<double> reference = forecaster->Forecast(features);
  std::vector<double> into;
  forecaster->ForecastInto(features, &into);
  EXPECT_EQ(into, reference);
  // And again, to prove the reused scratch does not leak state.
  forecaster->ForecastInto(features, &into);
  EXPECT_EQ(into, reference);
}

TEST(ForecasterTest, OnlineUpdateShiftsForecast) {
  std::vector<size_t> seq = DiurnalCategories(60.0, 6, 5);
  ForecasterOptions opts = FastOptions();
  auto forecaster = Forecaster::Train(seq, 60.0, 3, opts);
  ASSERT_TRUE(forecaster.ok());
  std::vector<double> features = forecaster->FeaturesFromHistory(seq, 60.0);
  std::vector<double> target = {0.0, 0.0, 1.0};
  double before = forecaster->Forecast(features)[2];
  for (int i = 0; i < 100; ++i) {
    forecaster->OnlineUpdate(features, target, 0.01);
  }
  double after = forecaster->Forecast(features)[2];
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace sky::core
