// The parallel offline phase must be a pure wall-clock knob: for a fixed
// seed, RunOfflinePhase produces a bit-identical OfflineModel for any thread
// count (per-index/per-chunk RNG forks, ordered result collection).

#include <gtest/gtest.h>

#include "core/offline.h"
#include "workloads/covid.h"

namespace sky::core {
namespace {

OfflineOptions SmallOffline(size_t num_threads) {
  OfflineOptions opts;
  opts.segment_seconds = 4.0;
  opts.train_horizon = Days(2);
  opts.num_categories = 3;
  // Forecaster training is serial either way; skip it to keep the suite
  // fast. The training *data* (the dominant parallel step) is compared.
  opts.train_forecaster = false;
  opts.num_threads = num_threads;
  return opts;
}

void ExpectModelsIdentical(const OfflineModel& a, const OfflineModel& b) {
  // Step 1a: filtered configurations.
  EXPECT_EQ(a.configs, b.configs);

  // Step 1b: placement profiles (bitwise on every simulated number).
  ASSERT_EQ(a.profiles.size(), b.profiles.size());
  for (size_t k = 0; k < a.profiles.size(); ++k) {
    const ConfigProfile& pa = a.profiles[k];
    const ConfigProfile& pb = b.profiles[k];
    EXPECT_EQ(pa.config_id, pb.config_id);
    EXPECT_EQ(pa.work_core_s_per_video_s, pb.work_core_s_per_video_s);
    ASSERT_EQ(pa.placements.size(), pb.placements.size());
    for (size_t p = 0; p < pa.placements.size(); ++p) {
      EXPECT_EQ(pa.placements[p].placement.node_loc,
                pb.placements[p].placement.node_loc);
      EXPECT_EQ(pa.placements[p].runtime_s, pb.placements[p].runtime_s);
      EXPECT_EQ(pa.placements[p].cloud_usd, pb.placements[p].cloud_usd);
      EXPECT_EQ(pa.placements[p].onprem_core_s, pb.placements[p].onprem_core_s);
      EXPECT_EQ(pa.placements[p].uplink_bytes, pb.placements[p].uplink_bytes);
    }
  }

  // Step 2: category centers.
  ASSERT_EQ(a.categories.NumCategories(), b.categories.NumCategories());
  ASSERT_EQ(a.categories.NumConfigs(), b.categories.NumConfigs());
  for (size_t c = 0; c < a.categories.NumCategories(); ++c) {
    for (size_t k = 0; k < a.categories.NumConfigs(); ++k) {
      EXPECT_EQ(a.categories.CenterQuality(c, k),
                b.categories.CenterQuality(c, k));
    }
  }

  // Step 3a: forecast training sequence.
  EXPECT_EQ(a.train_category_sequence, b.train_category_sequence);

  // The shared comparator (used by bench_table3_offline_runtime) must agree
  // with the granular checks above.
  EXPECT_TRUE(OfflineModelsIdentical(a, b));
}

TEST(OfflineDeterminismTest, IdenticalModelForThreadCounts1_2_8) {
  workloads::CovidWorkload covid;
  sim::ClusterSpec cluster;
  cluster.cores = 4;
  sim::CostModel cost_model(1.8);

  auto serial = RunOfflinePhase(covid, cluster, cost_model, SmallOffline(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (size_t threads : {2u, 8u}) {
    auto parallel =
        RunOfflinePhase(covid, cluster, cost_model, SmallOffline(threads));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectModelsIdentical(*serial, *parallel);
  }
}

TEST(OfflineDeterminismTest, BatchedForecasterIsBitIdenticalFor1_2_8Threads) {
  // The batched trainer's gradient chunks have a fixed geometry and reduce
  // in chunk order, so the trained network — not just the training data —
  // must be bit-identical for every pool size.
  workloads::CovidWorkload covid;
  sim::ClusterSpec cluster;
  cluster.cores = 4;
  sim::CostModel cost_model(1.8);

  OfflineOptions opts = SmallOffline(1);
  opts.train_forecaster = true;
  // Forecaster windows sized to the 2-day training horizon.
  opts.forecaster.input_span = Hours(12);
  opts.forecaster.planned_interval = Hours(6);
  opts.forecaster.training_stride = Minutes(15);
  opts.forecaster.train_options.epochs = 8;

  auto serial = RunOfflinePhase(covid, cluster, cost_model, opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(serial->forecaster.has_value());
  std::vector<double> reference = serial->forecaster->ModelParameters();

  for (size_t threads : {2u, 8u}) {
    opts.num_threads = threads;
    auto parallel = RunOfflinePhase(covid, cluster, cost_model, opts);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_TRUE(parallel->forecaster.has_value());
    EXPECT_EQ(parallel->forecaster->ModelParameters(), reference)
        << threads << " threads";
    // The shared comparator (used by the benches) sees the forecaster too.
    EXPECT_TRUE(OfflineModelsIdentical(*serial, *parallel));
  }
}

TEST(OfflineDeterminismTest, ExternalPoolMatchesOwnedPool) {
  workloads::CovidWorkload covid;
  sim::ClusterSpec cluster;
  cluster.cores = 4;
  sim::CostModel cost_model(1.8);

  auto serial = RunOfflinePhase(covid, cluster, cost_model, SmallOffline(1));
  ASSERT_TRUE(serial.ok());

  dag::ThreadPool pool(4);
  OfflineOptions opts = SmallOffline(1);
  opts.pool = &pool;
  auto pooled = RunOfflinePhase(covid, cluster, cost_model, opts);
  ASSERT_TRUE(pooled.ok());
  ExpectModelsIdentical(*serial, *pooled);
}

}  // namespace
}  // namespace sky::core
