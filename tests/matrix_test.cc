#include "ml/matrix.h"

#include <gtest/gtest.h>

namespace sky::ml {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.At(0, 1), 7.0);
}

TEST(MatrixTest, IdentityAndMatMul) {
  Matrix id = Matrix::Identity(3);
  Matrix m(3, 2);
  int v = 0;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) m.At(r, c) = ++v;
  }
  Matrix prod = id.MatMul(m);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(prod.At(r, c), m.At(r, c));
    }
  }
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  Matrix b(2, 2);
  b.At(0, 0) = 5;
  b.At(0, 1) = 6;
  b.At(1, 0) = 7;
  b.At(1, 1) = 8;
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50);
}

TEST(MatrixTest, Transpose) {
  Matrix m(2, 3);
  m.At(0, 2) = 9.0;
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 9.0);
}

TEST(MatrixTest, RowRoundTrip) {
  Matrix m(2, 2);
  m.SetRow(1, {3.0, 4.0});
  std::vector<double> row = m.Row(1);
  EXPECT_EQ(row, (std::vector<double>{3.0, 4.0}));
}

TEST(MatrixTest, AddScaledAndScale) {
  Matrix a(1, 2, 1.0);
  Matrix b(1, 2, 2.0);
  a.AddScaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 2.0);
  a.Scale(3.0);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 6.0);
  a.Fill(0.0);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 0.0);
}

TEST(MatrixTest, RandomHeHasExpectedScale) {
  Rng rng(9);
  Matrix m = Matrix::RandomHe(64, 64, &rng);
  double sum = 0.0, sq = 0.0;
  for (double v : m.data()) {
    sum += v;
    sq += v * v;
  }
  double n = static_cast<double>(m.data().size());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 2.0 / 64.0, 0.01);
}

TEST(VectorOpsTest, Distances) {
  EXPECT_DOUBLE_EQ(L2Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(L2Norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(L2Norm({}), 0.0);
}

}  // namespace
}  // namespace sky::ml
