#include "ml/matrix.h"

#include <gtest/gtest.h>

#include <tuple>

namespace sky::ml {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.At(0, 1), 7.0);
}

TEST(MatrixTest, IdentityAndMatMul) {
  Matrix id = Matrix::Identity(3);
  Matrix m(3, 2);
  int v = 0;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) m.At(r, c) = ++v;
  }
  Matrix prod = id.MatMul(m);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(prod.At(r, c), m.At(r, c));
    }
  }
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  Matrix b(2, 2);
  b.At(0, 0) = 5;
  b.At(0, 1) = 6;
  b.At(1, 0) = 7;
  b.At(1, 1) = 8;
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50);
}

TEST(MatrixTest, Transpose) {
  Matrix m(2, 3);
  m.At(0, 2) = 9.0;
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 9.0);
}

TEST(MatrixTest, RowRoundTrip) {
  Matrix m(2, 2);
  m.SetRow(1, {3.0, 4.0});
  std::vector<double> row = m.Row(1);
  EXPECT_EQ(row, (std::vector<double>{3.0, 4.0}));
}

TEST(MatrixTest, AddScaledAndScale) {
  Matrix a(1, 2, 1.0);
  Matrix b(1, 2, 2.0);
  a.AddScaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 2.0);
  a.Scale(3.0);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 6.0);
  a.Fill(0.0);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 0.0);
}

TEST(MatrixTest, RandomHeHasExpectedScale) {
  Rng rng(9);
  Matrix m = Matrix::RandomHe(64, 64, &rng);
  double sum = 0.0, sq = 0.0;
  for (double v : m.data()) {
    sum += v;
    sq += v * v;
  }
  double n = static_cast<double>(m.data().size());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 2.0 / 64.0, 0.01);
}

TEST(MatrixTest, ResizeReusesCapacityAndReshapes) {
  Matrix m(4, 6, 1.0);
  m.Resize(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.Resize(4, 6);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 6u);
}

TEST(MatrixTest, TransposeIntoMatchesTranspose) {
  Rng rng(11);
  Matrix m = Matrix::RandomHe(7, 5, &rng);
  Matrix t = m.Transpose();
  Matrix t2;
  m.TransposeInto(&t2);
  EXPECT_EQ(t.data(), t2.data());
  EXPECT_EQ(t2.rows(), 5u);
  EXPECT_EQ(t2.cols(), 7u);
}

TEST(MatrixTest, AddOuterProductKnownValues) {
  Matrix m(2, 3, 0.0);
  double u[] = {2.0, 0.0};  // zero row exercises the skip
  double v[] = {1.0, 2.0, 3.0};
  m.AddOuterProduct(u, v, 0.5);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
}

/// The blocked/striped kernels against the naive triple loop, on shapes that
/// cross every block boundary (64-row/col tiles, 128-deep k blocks). The
/// kernels reassociate sums in a fixed order, so comparisons allow rounding
/// slack scaled to the operand magnitudes.
class KernelTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(KernelTest, MatMulIntoMatchesNaive) {
  auto [n, k, m] = GetParam();
  Rng rng(101 + n + k + m);
  Matrix a = Matrix::RandomHe(n, k, &rng);
  Matrix b = Matrix::RandomHe(k, m, &rng);
  Matrix naive = a.MatMul(b);
  Matrix out;
  MatMulInto(a, b, &out);
  ASSERT_EQ(out.rows(), naive.rows());
  ASSERT_EQ(out.cols(), naive.cols());
  for (size_t i = 0; i < naive.data().size(); ++i) {
    EXPECT_NEAR(out.data()[i], naive.data()[i], 1e-12 * (1.0 + k));
  }
}

TEST_P(KernelTest, MatMulBiasIntoAddsBias) {
  auto [n, k, m] = GetParam();
  Rng rng(211 + n + k + m);
  Matrix a = Matrix::RandomHe(n, k, &rng);
  Matrix b = Matrix::RandomHe(k, m, &rng);
  std::vector<double> bias(m);
  for (double& v : bias) v = rng.Uniform(-1, 1);
  Matrix plain, biased;
  MatMulInto(a, b, &plain);
  MatMulBiasInto(a, b, bias, &biased);
  for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
    for (size_t j = 0; j < static_cast<size_t>(m); ++j) {
      EXPECT_NEAR(biased.At(i, j), plain.At(i, j) + bias[j],
                  1e-12 * (1.0 + k));
    }
  }
}

TEST_P(KernelTest, TransposedAMatchesExplicitTranspose) {
  auto [n, k, m] = GetParam();
  Rng rng(401 + n + k + m);
  Matrix a = Matrix::RandomHe(n, k, &rng);
  Matrix b = Matrix::RandomHe(n, m, &rng);
  Matrix reference = a.Transpose().MatMul(b);
  Matrix out;
  MatMulTransposedAInto(a, b, &out);
  ASSERT_EQ(out.rows(), reference.rows());
  ASSERT_EQ(out.cols(), reference.cols());
  for (size_t i = 0; i < reference.data().size(); ++i) {
    EXPECT_NEAR(out.data()[i], reference.data()[i], 1e-12 * (1.0 + n));
  }
}

TEST_P(KernelTest, IntoKernelsAreDeterministic) {
  auto [n, k, m] = GetParam();
  Rng rng(503 + n + k + m);
  Matrix a = Matrix::RandomHe(n, k, &rng);
  Matrix b = Matrix::RandomHe(k, m, &rng);
  Matrix first, second;
  MatMulInto(a, b, &first);
  MatMulInto(a, b, &second);
  EXPECT_EQ(first.data(), second.data());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(8, 24, 16),
                      std::make_tuple(5, 7, 3), std::make_tuple(64, 64, 64),
                      std::make_tuple(70, 150, 90),
                      std::make_tuple(130, 33, 2)));

TEST(VectorOpsTest, Distances) {
  EXPECT_DOUBLE_EQ(L2Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(L2Norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(L2Norm({}), 0.0);
}

}  // namespace
}  // namespace sky::ml
