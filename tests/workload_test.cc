#include "core/workload.h"

#include <gtest/gtest.h>

#include "sim/cluster_sim.h"
#include "workloads/udf_costs.h"
#include "workloads/covid.h"
#include "workloads/ev_counting.h"
#include "workloads/mosei.h"
#include "workloads/mot.h"

namespace sky::workloads {
namespace {

using core::KnobConfig;

template <typename W>
class WorkloadContractTest : public ::testing::Test {
 public:
  W workload_;
};

class MoseiHigh : public MoseiWorkload {
 public:
  MoseiHigh() : MoseiWorkload(SpikeKind::kHigh) {}
};

using Workloads =
    ::testing::Types<CovidWorkload, MotWorkload, MoseiHigh,
                     EvCountingWorkload>;
TYPED_TEST_SUITE(WorkloadContractTest, Workloads);

TYPED_TEST(WorkloadContractTest, CostsArePositiveAndVary) {
  const auto& space = this->workload_.knob_space();
  double min_cost = 1e18, max_cost = 0;
  for (const KnobConfig& c : space.AllConfigs()) {
    double cost = this->workload_.CostCoreSecondsPerVideoSecond(c);
    EXPECT_GT(cost, 0.0);
    min_cost = std::min(min_cost, cost);
    max_cost = std::max(max_cost, cost);
  }
  // Knob space must span a wide work range (the premise of knob tuning).
  EXPECT_GT(max_cost / min_cost, 10.0);
}

TYPED_TEST(WorkloadContractTest, QualityInUnitRange) {
  const auto& space = this->workload_.knob_space();
  const auto& content = this->workload_.content_process();
  for (const KnobConfig& c : space.AllConfigs()) {
    for (double t = 0; t < Days(1); t += Hours(3)) {
      double q = this->workload_.TrueQuality(c, content.At(t));
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
    }
  }
}

TYPED_TEST(WorkloadContractTest, MostExpensiveConfigIsBestOnHardContent) {
  const auto& space = this->workload_.knob_space();
  KnobConfig cheapest = core::CheapestConfig(this->workload_);
  KnobConfig best = core::MostQualitativeConfig(this->workload_);
  EXPECT_GT(this->workload_.CostCoreSecondsPerVideoSecond(best),
            this->workload_.CostCoreSecondsPerVideoSecond(cheapest));
  // On difficult content the qualitative config must clearly win.
  video::ContentState hard;
  hard.density = 0.9;
  hard.occlusion = 0.85;
  hard.difficulty = 0.9;
  hard.stream_count = 60;
  EXPECT_GT(this->workload_.TrueQuality(best, hard),
            this->workload_.TrueQuality(cheapest, hard) + 0.15);
  (void)space;
}

TYPED_TEST(WorkloadContractTest, CheapConfigCompetitiveOnEasyContent) {
  KnobConfig cheapest = core::CheapestConfig(this->workload_);
  KnobConfig best = core::MostQualitativeConfig(this->workload_);
  video::ContentState easy;
  easy.density = 0.04;
  easy.occlusion = 0.02;
  easy.difficulty = 0.05;
  easy.stream_count = 2;
  double gap = this->workload_.TrueQuality(best, easy) -
               this->workload_.TrueQuality(cheapest, easy);
  EXPECT_LT(gap, 0.3);
}

TYPED_TEST(WorkloadContractTest, MeasuredQualityIsNoisyButUnbiased) {
  KnobConfig best = core::MostQualitativeConfig(this->workload_);
  video::ContentState mid = this->workload_.content_process().At(Hours(12));
  double true_q = this->workload_.TrueQuality(best, mid);
  Rng rng(5);
  double sum = 0.0;
  bool varied = false;
  double first = this->workload_.MeasuredQuality(best, mid, &rng);
  for (int i = 0; i < 500; ++i) {
    double m = this->workload_.MeasuredQuality(best, mid, &rng);
    sum += m;
    if (m != first) varied = true;
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }
  EXPECT_TRUE(varied);
  EXPECT_NEAR(sum / 500.0, true_q,
              0.03);  // clamping may bias slightly near 1.0
}

TYPED_TEST(WorkloadContractTest, TaskGraphMatchesCostModel) {
  sim::CostModel cost_model(1.8);
  const auto& space = this->workload_.knob_space();
  for (size_t id = 0; id < space.NumConfigs(); id += 7) {
    KnobConfig c = space.IdToConfig(id);
    dag::TaskGraph g = this->workload_.BuildTaskGraph(c, 4.0, cost_model);
    EXPECT_TRUE(g.Validate().ok());
    EXPECT_GT(g.NumNodes(), 1u);
    // Total DAG work should track cost(k) * segment within a tolerance
    // (auxiliary nodes may add a little).
    double dag_work = g.TotalOnPremWork();
    double expected = this->workload_.CostCoreSecondsPerVideoSecond(c) * 4.0;
    EXPECT_NEAR(dag_work, expected, 0.25 * expected + 0.05);
  }
}

TEST(CovidWorkloadTest, KnobDomainsMatchPaper) {
  CovidWorkload w;
  const core::KnobSpace& s = w.knob_space();
  EXPECT_EQ(s.NumConfigs(), 5u * 4 * 2);
  EXPECT_EQ(s.knob(0).name, "frame_rate");
  EXPECT_EQ(s.knob(0).values, (std::vector<double>{30, 15, 10, 5, 1}));
  EXPECT_EQ(s.knob(1).values, (std::vector<double>{1, 5, 30, 60}));
  EXPECT_EQ(s.knob(2).values, (std::vector<double>{1, 4}));
}

TEST(MotWorkloadTest, KnobDomainsMatchPaper) {
  MotWorkload w;
  EXPECT_EQ(w.knob_space().NumConfigs(), 4u * 2 * 4 * 3);
}

TEST(MoseiWorkloadTest, KnobDomainsAndNames) {
  MoseiWorkload high(MoseiWorkload::SpikeKind::kHigh);
  MoseiWorkload lng(MoseiWorkload::SpikeKind::kLong);
  EXPECT_EQ(high.name(), "MOSEI-HIGH");
  EXPECT_EQ(lng.name(), "MOSEI-LONG");
  EXPECT_EQ(high.knob_space().NumConfigs(), 7u * 6 * 3 * 5);
}

TEST(MoseiWorkloadTest, QualityDropsWhenUnderProvisionedForSpike) {
  MoseiWorkload w(MoseiWorkload::SpikeKind::kHigh);
  // Config analyzing only 4 streams: quality collapses when 62 are live.
  core::KnobConfig few = {0, 5, 2, 0};   // best models, 4 streams
  core::KnobConfig many = {0, 5, 2, 4};  // best models, 62 streams
  video::ContentState spike;
  spike.stream_count = 62;
  spike.difficulty = 0.4;
  EXPECT_LT(w.TrueQuality(few, spike), 0.15);
  EXPECT_GT(w.TrueQuality(many, spike), 0.8);
}

TEST(EvWorkloadTest, ExpensiveConfigMatchesFig3Workload) {
  // Fig. 3: always using the most expensive configuration is a constant
  // 5.2 TFLOP/s.
  EvCountingWorkload w;
  core::KnobConfig expensive = core::MostQualitativeConfig(w);
  double tflops = w.CostCoreSecondsPerVideoSecond(expensive) *
                  kTflopPerCoreSecond;
  EXPECT_NEAR(tflops, 5.2, 0.4);
}

}  // namespace
}  // namespace sky::workloads
