#include "video/scene.h"

#include <gtest/gtest.h>

namespace sky::video {
namespace {

TEST(BoxIouTest, KnownValues) {
  SceneObject a{1, 0.0, 0.0, 0.5, 0.5};
  SceneObject b{2, 0.25, 0.25, 0.5, 0.5};
  // Intersection 0.25 x 0.25 = 0.0625; union 0.25 + 0.25 - 0.0625.
  EXPECT_NEAR(BoxIou(a, b), 0.0625 / 0.4375, 1e-9);
  SceneObject c{3, 0.9, 0.9, 0.05, 0.05};
  EXPECT_DOUBLE_EQ(BoxIou(a, c), 0.0);
  EXPECT_DOUBLE_EQ(BoxIou(a, a), 1.0);
}

TEST(OcclusionTest, EmptyAndDisjoint) {
  EXPECT_DOUBLE_EQ(OcclusionFraction({}), 0.0);
  std::vector<SceneObject> objs = {{1, 0.0, 0.0, 0.1, 0.1},
                                   {2, 0.5, 0.5, 0.1, 0.1}};
  EXPECT_DOUBLE_EQ(OcclusionFraction(objs), 0.0);
}

TEST(OcclusionTest, OverlappingPairCounts) {
  std::vector<SceneObject> objs = {{1, 0.0, 0.0, 0.2, 0.2},
                                   {2, 0.05, 0.05, 0.2, 0.2},
                                   {3, 0.7, 0.7, 0.1, 0.1}};
  EXPECT_NEAR(OcclusionFraction(objs), 2.0 / 3.0, 1e-9);
}

TEST(SceneGeneratorTest, DensityDrivesPopulation) {
  SceneOptions opts;
  opts.seed = 21;
  SceneGenerator quiet(opts);
  SceneGenerator busy(opts);
  double quiet_total = 0.0, busy_total = 0.0;
  for (int i = 0; i < 900; ++i) {  // 30 s of video
    quiet_total += quiet.NextFrame(0.05).objects.size();
    busy_total += busy.NextFrame(0.9).objects.size();
  }
  EXPECT_GT(busy_total, quiet_total * 3);
}

TEST(SceneGeneratorTest, ObjectsMoveAndEventuallyLeave) {
  SceneOptions opts;
  opts.seed = 22;
  SceneGenerator gen(opts);
  // Fill the scene, then cut the density; population must decay.
  for (int i = 0; i < 600; ++i) gen.NextFrame(0.8);
  size_t populated = gen.live_objects().size();
  ASSERT_GT(populated, 0u);
  for (int i = 0; i < 600; ++i) gen.NextFrame(0.0);
  EXPECT_LT(gen.live_objects().size(), populated);
}

TEST(SceneGeneratorTest, FramesAreWellFormed) {
  SceneOptions opts;
  opts.width = 80;
  opts.height = 45;
  SceneGenerator gen(opts);
  Frame f = gen.NextFrame(0.5);
  EXPECT_EQ(f.width, 80);
  EXPECT_EQ(f.height, 45);
  EXPECT_EQ(f.luma.size(), 80u * 45u);
  EXPECT_EQ(f.index, 0);
  Frame f2 = gen.NextFrame(0.5);
  EXPECT_EQ(f2.index, 1);
  EXPECT_GT(f2.timestamp_s, f.timestamp_s);
}

TEST(SceneGeneratorTest, SpawnsElectricVehicles) {
  SceneOptions opts;
  opts.seed = 23;
  opts.electric_fraction = 0.5;
  SceneGenerator gen(opts);
  bool saw_ev = false;
  for (int i = 0; i < 3000 && !saw_ev; ++i) {
    for (const SceneObject& o : gen.NextFrame(0.8).objects) {
      if (o.class_id == 2) saw_ev = true;
    }
  }
  EXPECT_TRUE(saw_ev);
}

}  // namespace
}  // namespace sky::video
