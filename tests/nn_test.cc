#include "ml/nn.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sky::ml {
namespace {

TEST(NnTest, PredictShapesAndSoftmaxSumsToOne) {
  Rng rng(1);
  FeedForwardNet net(4, {16, 8}, 3, Activation::kSoftmax, &rng);
  std::vector<double> out = net.Predict({0.1, 0.2, 0.3, 0.4});
  ASSERT_EQ(out.size(), 3u);
  double sum = 0.0;
  for (double v : out) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(NnTest, ParameterCount) {
  Rng rng(1);
  // Appendix K architecture on a 32-d input with 4 categories.
  FeedForwardNet net(32, {16, 8}, 4, Activation::kSoftmax, &rng);
  EXPECT_EQ(net.NumParameters(),
            32u * 16 + 16 + 16 * 8 + 8 + 8 * 4 + 4);
}

TEST(NnTest, TrainRejectsBadShapes) {
  Rng rng(1);
  FeedForwardNet net(2, {4}, 2, Activation::kSoftmax, &rng);
  Matrix x(10, 3), y(10, 2);
  EXPECT_FALSE(net.Train(x, y, TrainOptions{}).ok());
  Matrix x2(10, 2), y2(9, 2);
  EXPECT_FALSE(net.Train(x2, y2, TrainOptions{}).ok());
}

TEST(NnTest, LearnsLinearlySeparableClassification) {
  Rng rng(5);
  FeedForwardNet net(2, {16, 8}, 2, Activation::kSoftmax, &rng);
  // Class 0: x0 > x1; class 1 otherwise.
  size_t n = 400;
  Matrix x(n, 2), y(n, 2);
  Rng data_rng(6);
  for (size_t i = 0; i < n; ++i) {
    double a = data_rng.Uniform(0, 1);
    double b = data_rng.Uniform(0, 1);
    x.At(i, 0) = a;
    x.At(i, 1) = b;
    y.At(i, a > b ? 0 : 1) = 1.0;
  }
  TrainOptions opts;
  opts.epochs = 80;
  opts.learning_rate = 0.02;
  auto report = net.Train(x, y, opts);
  ASSERT_TRUE(report.ok());
  // Evaluate accuracy on fresh data.
  size_t correct = 0;
  for (size_t i = 0; i < 200; ++i) {
    double a = data_rng.Uniform(0, 1);
    double b = data_rng.Uniform(0, 1);
    std::vector<double> pred = net.Predict({a, b});
    size_t cls = pred[0] > pred[1] ? 0 : 1;
    if (cls == (a > b ? 0u : 1u)) ++correct;
  }
  EXPECT_GE(correct, 180u);  // >= 90% accuracy
}

TEST(NnTest, LearnsRegressionWithMse) {
  Rng rng(7);
  FeedForwardNet net(1, {16}, 1, Activation::kIdentity, &rng);
  size_t n = 200;
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    double v = static_cast<double>(i) / n;
    x.At(i, 0) = v;
    y.At(i, 0) = 2.0 * v + 0.5;
  }
  TrainOptions opts;
  opts.epochs = 150;
  opts.learning_rate = 0.01;
  opts.loss = Loss::kMse;
  auto report = net.Train(x, y, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(net.Predict({0.5})[0], 1.5, 0.1);
  EXPECT_NEAR(net.Predict({0.1})[0], 0.7, 0.12);
}

TEST(NnTest, TrainingLossDecreases) {
  Rng rng(8);
  FeedForwardNet net(3, {8}, 2, Activation::kSoftmax, &rng);
  size_t n = 120;
  Matrix x(n, 3), y(n, 2);
  Rng data_rng(9);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < 3; ++c) x.At(i, c) = data_rng.Uniform(0, 1);
    y.At(i, x.At(i, 0) > 0.5 ? 0 : 1) = 1.0;
  }
  TrainOptions opts;
  opts.epochs = 40;
  auto report = net.Train(x, y, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->train_loss_per_epoch.back(),
            report->train_loss_per_epoch.front());
  EXPECT_LE(report->best_val_loss,
            report->val_loss_per_epoch.front() + 1e-12);
}

TEST(NnTest, OnlineUpdateMovesPredictionTowardTarget) {
  Rng rng(10);
  FeedForwardNet net(2, {8}, 2, Activation::kSoftmax, &rng);
  std::vector<double> input = {0.4, 0.6};
  std::vector<double> target = {1.0, 0.0};
  double before = net.Predict(input)[0];
  for (int i = 0; i < 50; ++i) {
    net.OnlineUpdate(input, target, 0.05, Loss::kCrossEntropy);
  }
  double after = net.Predict(input)[0];
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.9);
}

TEST(NnTest, ComputeLossValues) {
  EXPECT_NEAR(ComputeLoss({0.5, 0.5}, {1.0, 0.0}, Loss::kCrossEntropy),
              -std::log(0.5), 1e-9);
  EXPECT_DOUBLE_EQ(ComputeLoss({1.0, 3.0}, {0.0, 0.0}, Loss::kMse), 5.0);
}

}  // namespace
}  // namespace sky::ml
