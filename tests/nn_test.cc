#include "ml/nn.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sky::ml {
namespace {

TEST(NnTest, PredictShapesAndSoftmaxSumsToOne) {
  Rng rng(1);
  FeedForwardNet net(4, {16, 8}, 3, Activation::kSoftmax, &rng);
  std::vector<double> out = net.Predict({0.1, 0.2, 0.3, 0.4});
  ASSERT_EQ(out.size(), 3u);
  double sum = 0.0;
  for (double v : out) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(NnTest, ParameterCount) {
  Rng rng(1);
  // Appendix K architecture on a 32-d input with 4 categories.
  FeedForwardNet net(32, {16, 8}, 4, Activation::kSoftmax, &rng);
  EXPECT_EQ(net.NumParameters(),
            32u * 16 + 16 + 16 * 8 + 8 + 8 * 4 + 4);
}

TEST(NnTest, TrainRejectsBadShapes) {
  Rng rng(1);
  FeedForwardNet net(2, {4}, 2, Activation::kSoftmax, &rng);
  Matrix x(10, 3), y(10, 2);
  EXPECT_FALSE(net.Train(x, y, TrainOptions{}).ok());
  Matrix x2(10, 2), y2(9, 2);
  EXPECT_FALSE(net.Train(x2, y2, TrainOptions{}).ok());
}

TEST(NnTest, LearnsLinearlySeparableClassification) {
  Rng rng(5);
  FeedForwardNet net(2, {16, 8}, 2, Activation::kSoftmax, &rng);
  // Class 0: x0 > x1; class 1 otherwise.
  size_t n = 400;
  Matrix x(n, 2), y(n, 2);
  Rng data_rng(6);
  for (size_t i = 0; i < n; ++i) {
    double a = data_rng.Uniform(0, 1);
    double b = data_rng.Uniform(0, 1);
    x.At(i, 0) = a;
    x.At(i, 1) = b;
    y.At(i, a > b ? 0 : 1) = 1.0;
  }
  TrainOptions opts;
  opts.epochs = 80;
  opts.learning_rate = 0.02;
  auto report = net.Train(x, y, opts);
  ASSERT_TRUE(report.ok());
  // Evaluate accuracy on fresh data.
  size_t correct = 0;
  for (size_t i = 0; i < 200; ++i) {
    double a = data_rng.Uniform(0, 1);
    double b = data_rng.Uniform(0, 1);
    std::vector<double> pred = net.Predict({a, b});
    size_t cls = pred[0] > pred[1] ? 0 : 1;
    if (cls == (a > b ? 0u : 1u)) ++correct;
  }
  EXPECT_GE(correct, 180u);  // >= 90% accuracy
}

TEST(NnTest, LearnsRegressionWithMse) {
  Rng rng(7);
  FeedForwardNet net(1, {16}, 1, Activation::kIdentity, &rng);
  size_t n = 200;
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    double v = static_cast<double>(i) / n;
    x.At(i, 0) = v;
    y.At(i, 0) = 2.0 * v + 0.5;
  }
  TrainOptions opts;
  opts.epochs = 150;
  opts.learning_rate = 0.01;
  opts.loss = Loss::kMse;
  auto report = net.Train(x, y, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(net.Predict({0.5})[0], 1.5, 0.1);
  EXPECT_NEAR(net.Predict({0.1})[0], 0.7, 0.12);
}

TEST(NnTest, TrainingLossDecreases) {
  Rng rng(8);
  FeedForwardNet net(3, {8}, 2, Activation::kSoftmax, &rng);
  size_t n = 120;
  Matrix x(n, 3), y(n, 2);
  Rng data_rng(9);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < 3; ++c) x.At(i, c) = data_rng.Uniform(0, 1);
    y.At(i, x.At(i, 0) > 0.5 ? 0 : 1) = 1.0;
  }
  TrainOptions opts;
  opts.epochs = 40;
  auto report = net.Train(x, y, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->train_loss_per_epoch.back(),
            report->train_loss_per_epoch.front());
  EXPECT_LE(report->best_val_loss,
            report->val_loss_per_epoch.front() + 1e-12);
}

TEST(NnTest, OnlineUpdateMovesPredictionTowardTarget) {
  Rng rng(10);
  FeedForwardNet net(2, {8}, 2, Activation::kSoftmax, &rng);
  std::vector<double> input = {0.4, 0.6};
  std::vector<double> target = {1.0, 0.0};
  double before = net.Predict(input)[0];
  for (int i = 0; i < 50; ++i) {
    net.OnlineUpdate(input, target, 0.05, Loss::kCrossEntropy);
  }
  double after = net.Predict(input)[0];
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.9);
}

TEST(NnTest, ComputeLossValues) {
  EXPECT_NEAR(ComputeLoss({0.5, 0.5}, {1.0, 0.0}, Loss::kCrossEntropy),
              -std::log(0.5), 1e-9);
  EXPECT_DOUBLE_EQ(ComputeLoss({1.0, 3.0}, {0.0, 0.0}, Loss::kMse), 5.0);
}

// --- Batched-backend parity and determinism ---

namespace parity {

struct Shape {
  size_t input;
  std::vector<size_t> hidden;
  size_t output;
  size_t samples;
};

/// Random supervised data matching the loss: one-hot rows (a distribution)
/// for cross-entropy, free targets for MSE.
void MakeData(const Shape& shape, Loss loss, uint64_t seed, Matrix* x,
              Matrix* y) {
  Rng rng(seed);
  *x = Matrix(shape.samples, shape.input);
  *y = Matrix(shape.samples, shape.output, 0.0);
  for (size_t i = 0; i < shape.samples; ++i) {
    for (size_t c = 0; c < shape.input; ++c) {
      x->At(i, c) = rng.Uniform(-1, 1);
    }
    if (loss == Loss::kCrossEntropy) {
      y->At(i, static_cast<size_t>(rng.UniformInt(
                   0, static_cast<int64_t>(shape.output) - 1))) = 1.0;
    } else {
      for (size_t c = 0; c < shape.output; ++c) {
        y->At(i, c) = rng.Uniform(-1, 1);
      }
    }
  }
}

/// Trains two identically initialized nets, one per backend, and requires
/// identical loss curves and weights to 1e-9 — the contract that makes
/// TrainBackend::kPerSample a usable reference oracle. The two backends
/// differ only in how their kernels associate sums, so the trajectories
/// agree to rounding error.
void ExpectBackendParity(const Shape& shape, Loss loss, Activation out_act,
                         uint64_t seed) {
  Matrix x, y;
  MakeData(shape, loss, seed, &x, &y);
  TrainOptions opts;
  opts.epochs = 12;
  opts.loss = loss;
  opts.learning_rate = 0.01;

  Rng rng_a(seed + 1);
  FeedForwardNet a(shape.input, shape.hidden, shape.output, out_act, &rng_a);
  opts.backend = TrainBackend::kPerSample;
  auto report_a = a.Train(x, y, opts);
  ASSERT_TRUE(report_a.ok()) << report_a.status().ToString();

  Rng rng_b(seed + 1);
  FeedForwardNet b(shape.input, shape.hidden, shape.output, out_act, &rng_b);
  opts.backend = TrainBackend::kBatched;
  auto report_b = b.Train(x, y, opts);
  ASSERT_TRUE(report_b.ok()) << report_b.status().ToString();

  ASSERT_EQ(report_a->train_loss_per_epoch.size(),
            report_b->train_loss_per_epoch.size());
  for (size_t e = 0; e < report_a->train_loss_per_epoch.size(); ++e) {
    EXPECT_NEAR(report_a->train_loss_per_epoch[e],
                report_b->train_loss_per_epoch[e], 1e-9);
    EXPECT_NEAR(report_a->val_loss_per_epoch[e],
                report_b->val_loss_per_epoch[e], 1e-9);
  }
  EXPECT_EQ(report_a->best_epoch, report_b->best_epoch);

  std::vector<double> wa = a.FlattenParameters();
  std::vector<double> wb = b.FlattenParameters();
  ASSERT_EQ(wa.size(), wb.size());
  for (size_t i = 0; i < wa.size(); ++i) {
    EXPECT_NEAR(wa[i], wb[i], 1e-9) << "parameter " << i;
  }
}

}  // namespace parity

TEST(NnParityTest, BatchedMatchesPerSampleOnRandomShapes) {
  Rng shapes(2024);
  for (int trial = 0; trial < 6; ++trial) {
    parity::Shape s;
    s.input = static_cast<size_t>(shapes.UniformInt(1, 12));
    s.hidden.clear();
    for (int64_t l = shapes.UniformInt(1, 2); l > 0; --l) {
      s.hidden.push_back(static_cast<size_t>(shapes.UniformInt(2, 24)));
    }
    s.output = static_cast<size_t>(shapes.UniformInt(2, 6));
    s.samples = static_cast<size_t>(shapes.UniformInt(30, 120));
    // Both losses with their canonical output activations.
    parity::ExpectBackendParity(s, Loss::kCrossEntropy, Activation::kSoftmax,
                                900 + trial);
    parity::ExpectBackendParity(s, Loss::kMse, Activation::kIdentity,
                                700 + trial);
  }
}

TEST(NnParityTest, BatchedMatchesPerSampleForMseOnEveryOutputActivation) {
  // MSE composes with all three output activations (identity, ReLU mask,
  // full softmax Jacobian); each takes a different backward branch.
  parity::Shape s{6, {10, 5}, 4, 80};
  parity::ExpectBackendParity(s, Loss::kMse, Activation::kIdentity, 31);
  parity::ExpectBackendParity(s, Loss::kMse, Activation::kRelu, 32);
  parity::ExpectBackendParity(s, Loss::kMse, Activation::kSoftmax, 33);
}

TEST(NnParityTest, BatchedTrainingIsBitIdenticalForAnyPoolSize) {
  parity::Shape s{8, {16, 8}, 3, 160};
  Matrix x, y;
  parity::MakeData(s, Loss::kCrossEntropy, 77, &x, &y);
  TrainOptions opts;
  opts.epochs = 8;
  opts.grad_chunk_rows = 4;  // several chunks per batch

  Rng rng_serial(5);
  FeedForwardNet serial(s.input, s.hidden, s.output, Activation::kSoftmax,
                        &rng_serial);
  ASSERT_TRUE(serial.Train(x, y, opts).ok());
  std::vector<double> reference = serial.FlattenParameters();

  for (size_t threads : {2u, 5u}) {
    dag::ThreadPool pool(threads);
    opts.pool = &pool;
    Rng rng(5);
    FeedForwardNet net(s.input, s.hidden, s.output, Activation::kSoftmax,
                       &rng);
    ASSERT_TRUE(net.Train(x, y, opts).ok());
    // Bitwise: the chunk geometry and reduction order never depend on the
    // pool, so EXPECT_EQ on the raw doubles is the right comparison.
    EXPECT_EQ(net.FlattenParameters(), reference) << threads << " threads";
  }
}

TEST(NnTest, PredictIntoAndBatchMatchPredictBitwise) {
  Rng rng(41);
  FeedForwardNet net(5, {12, 6}, 4, Activation::kSoftmax, &rng);
  Rng data_rng(42);
  Matrix x(40, 5);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t c = 0; c < x.cols(); ++c) x.At(i, c) = data_rng.Uniform(-1, 1);
  }
  PredictScratch scratch;
  TrainWorkspace ws;
  Matrix batch_out;
  net.PredictBatchInto(x, &ws, &batch_out);
  ASSERT_EQ(batch_out.rows(), 40u);
  ASSERT_EQ(batch_out.cols(), 4u);
  std::vector<double> into;
  for (size_t i = 0; i < x.rows(); ++i) {
    std::vector<double> reference = net.Predict(x.Row(i));
    net.PredictInto(x.Row(i), &scratch, &into);
    EXPECT_EQ(into, reference);  // PredictInto replays Predict exactly
    for (size_t c = 0; c < 4; ++c) {
      // The batched forward uses the GEMM kernels: rounding-level agreement.
      EXPECT_NEAR(batch_out.At(i, c), reference[c], 1e-12);
    }
  }
}

TEST(NnTest, PredictIntoF32TracksF64WithinTolerance) {
  Rng rng(53);
  FeedForwardNet net(8, {16, 8}, 4, Activation::kSoftmax, &rng);
  PredictScratch scratch64;
  PredictScratchF32 scratch32;
  std::vector<double> out64, out32;
  Rng xrng(54);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(8);
    for (double& v : x) v = xrng.Normal(0.0, 1.0);
    net.PredictInto(x, &scratch64, &out64);
    net.PredictIntoF32(x, &scratch32, &out32);
    ASSERT_EQ(out32.size(), out64.size());
    double sum = 0.0;
    for (size_t c = 0; c < out32.size(); ++c) {
      // Post-softmax probabilities: absolute f32-level agreement (the bound
      // documented in docs/precision.md).
      EXPECT_NEAR(out32[c], out64[c], 1e-4);
      sum += out32[c];
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(NnTest, F32MirrorRefreshesAfterOnlineUpdate) {
  // The f32 mirror is lazy: an OnlineUpdate between two f32 forwards must
  // be reflected in the second one (a stale mirror would keep returning the
  // old prediction bit-for-bit).
  Rng rng(55);
  FeedForwardNet net(4, {8}, 2, Activation::kSoftmax, &rng);
  std::vector<double> x = {0.3, -0.1, 0.5, 0.2};
  std::vector<double> y = {1.0, 0.0};
  PredictScratchF32 scratch;
  std::vector<double> before, after, reference;
  net.PredictIntoF32(x, &scratch, &before);
  for (int i = 0; i < 50; ++i) net.OnlineUpdate(x, y, 0.05, Loss::kCrossEntropy);
  net.PredictIntoF32(x, &scratch, &after);
  EXPECT_NE(before, after);
  // And it converged toward the target like the f64 view of the same net.
  PredictScratch scratch64;
  net.PredictInto(x, &scratch64, &reference);
  EXPECT_NEAR(after[0], reference[0], 1e-4);
  EXPECT_GT(after[0], before[0]);
}

TEST(NnTest, PredictBatchIntoF32MatchesRowWiseF32) {
  Rng rng(56);
  FeedForwardNet net(6, {12}, 3, Activation::kSoftmax, &rng);
  Matrix x(17, 6);
  Rng xrng(57);
  for (double& v : x.data()) v = xrng.Normal(0.0, 1.0);
  PredictScratchF32 scratch;
  Matrix batch_out;
  net.PredictBatchIntoF32(x, &scratch, &batch_out);
  ASSERT_EQ(batch_out.rows(), 17u);
  ASSERT_EQ(batch_out.cols(), 3u);
  std::vector<double> row_out;
  for (size_t i = 0; i < x.rows(); ++i) {
    net.PredictIntoF32(x.Row(i), &scratch, &row_out);
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(batch_out.At(i, c), row_out[c]);  // same kernel, same bits
    }
  }
}

TEST(NnTest, OnlineUpdateIsDeterministicAndAllocationStable) {
  Rng rng(51);
  FeedForwardNet a(4, {8}, 2, Activation::kSoftmax, &rng);
  Rng rng2(51);
  FeedForwardNet b(4, {8}, 2, Activation::kSoftmax, &rng2);
  std::vector<double> x = {0.1, -0.2, 0.3, 0.4};
  std::vector<double> y = {1.0, 0.0};
  for (int i = 0; i < 20; ++i) {
    a.OnlineUpdate(x, y, 0.01, Loss::kCrossEntropy);
    b.OnlineUpdate(x, y, 0.01, Loss::kCrossEntropy);
  }
  EXPECT_EQ(a.FlattenParameters(), b.FlattenParameters());
}

}  // namespace
}  // namespace sky::ml
