// Parameterized property sweeps over all four paper workloads: monotone
// quality responses, Pareto structure of the knob space, and end-to-end
// engine invariants per workload.

#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "core/offline.h"
#include "workloads/covid.h"
#include "workloads/ev_counting.h"
#include "workloads/mosei.h"
#include "workloads/mot.h"

namespace sky {
namespace {

enum class Kind { kCovid, kMot, kMoseiHigh, kMoseiLong, kEv };

std::unique_ptr<core::Workload> Make(Kind kind) {
  switch (kind) {
    case Kind::kCovid:
      return std::make_unique<workloads::CovidWorkload>();
    case Kind::kMot:
      return std::make_unique<workloads::MotWorkload>();
    case Kind::kMoseiHigh:
      return std::make_unique<workloads::MoseiWorkload>(
          workloads::MoseiWorkload::SpikeKind::kHigh);
    case Kind::kMoseiLong:
      return std::make_unique<workloads::MoseiWorkload>(
          workloads::MoseiWorkload::SpikeKind::kLong);
    case Kind::kEv:
      return std::make_unique<workloads::EvCountingWorkload>();
  }
  return nullptr;
}

class WorkloadSweep : public ::testing::TestWithParam<Kind> {};

TEST_P(WorkloadSweep, QualityDegradesMonotonicallyWithContentDifficulty) {
  std::unique_ptr<core::Workload> w = Make(GetParam());
  // For every configuration, quality at harder content must not be better
  // than at easier content (holding everything else fixed).
  video::ContentState easy, mid, hard;
  easy.density = 0.1;
  easy.occlusion = 0.05;
  easy.difficulty = 0.1;
  easy.stream_count = 10;
  mid.density = 0.5;
  mid.occlusion = 0.4;
  mid.difficulty = 0.5;
  mid.stream_count = 30;
  hard.density = 0.9;
  hard.occlusion = 0.85;
  hard.difficulty = 0.9;
  hard.stream_count = 60;
  for (const core::KnobConfig& c : w->knob_space().AllConfigs()) {
    double qe = w->TrueQuality(c, easy);
    double qm = w->TrueQuality(c, mid);
    double qh = w->TrueQuality(c, hard);
    EXPECT_GE(qe, qm - 1e-9) << w->knob_space().ToString(c);
    EXPECT_GE(qm, qh - 1e-9) << w->knob_space().ToString(c);
  }
}

TEST_P(WorkloadSweep, KnobSpaceHasNontrivialParetoFrontier) {
  std::unique_ptr<core::Workload> w = Make(GetParam());
  // Count configurations on the (cost, hard-content-quality) Pareto
  // frontier: the premise of knob tuning is a ladder of trade-offs, not a
  // single dominant configuration.
  video::ContentState hard;
  hard.density = 0.85;
  hard.occlusion = 0.8;
  hard.difficulty = 0.85;
  hard.stream_count = 55;
  std::vector<std::pair<double, double>> points;  // (cost, quality)
  for (const core::KnobConfig& c : w->knob_space().AllConfigs()) {
    points.push_back(
        {w->CostCoreSecondsPerVideoSecond(c), w->TrueQuality(c, hard)});
  }
  std::sort(points.begin(), points.end());
  size_t frontier = 0;
  double best_q = -1.0;
  for (const auto& [cost, q] : points) {
    if (q > best_q + 1e-9) {
      best_q = q;
      ++frontier;
    }
  }
  EXPECT_GE(frontier, 4u);
}

TEST_P(WorkloadSweep, EngineInvariantsHoldEndToEnd) {
  std::unique_ptr<core::Workload> w = Make(GetParam());
  sim::ClusterSpec cluster;
  cluster.cores = 8;
  sim::CostModel cost_model(1.8);
  core::OfflineOptions offline;
  offline.segment_seconds = 6.0;
  offline.train_horizon = Days(3);
  offline.num_categories = 3;
  offline.train_forecaster = false;
  auto model = core::RunOfflinePhase(*w, cluster, cost_model, offline);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  core::EngineOptions run;
  run.duration = Hours(12);
  run.plan_interval = Hours(12);
  run.cloud_budget_usd_per_interval = 1.0;
  core::IngestionEngine engine(w.get(), &*model, cluster, &cost_model, run);
  auto result = engine.Run(Days(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Invariants: throughput guarantee, budget adherence, bounded quality,
  // consistent error taxonomy, and work >= on-prem share.
  EXPECT_EQ(result->overflow_events, 0u);
  EXPECT_LE(result->cloud_usd, 1.0 + 1e-9);
  EXPECT_GT(result->mean_quality, 0.0);
  EXPECT_LE(result->mean_quality, 1.0);
  EXPECT_EQ(result->type_a_errors + result->type_b_errors,
            result->misclassified);
  EXPECT_LE(result->buffer_high_water_bytes,
            run.buffer_bytes.value_or(core::kDefaultBufferBytes));
  EXPECT_GT(result->work_core_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSweep,
                         ::testing::Values(Kind::kCovid, Kind::kMot,
                                           Kind::kMoseiHigh, Kind::kMoseiLong,
                                           Kind::kEv));

}  // namespace
}  // namespace sky
