#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/rng.h"
#include "util/sim_time.h"
#include "util/stats.h"
#include "util/table.h"

namespace sky {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(3);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(stats.variance()), 2.0, 0.1);
}

TEST(RngTest, PoissonMean) {
  Rng rng(4);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(static_cast<double>(rng.Poisson(3.5)));
  }
  EXPECT_NEAR(stats.mean(), 3.5, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, BernoulliClampsOutOfRangeP) {
  Rng rng(6);
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(7), b(7);
  Rng fa = a.Fork("child");
  Rng fb = b.Fork("child");
  EXPECT_DOUBLE_EQ(fa.Uniform(0, 1), fb.Uniform(0, 1));
  Rng other = a.Fork("different");
  // Different tags should (overwhelmingly) diverge.
  bool diverged = false;
  Rng same = b.Fork("child");
  for (int i = 0; i < 10; ++i) {
    if (other.Uniform(0, 1) != same.Uniform(0, 1)) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(StatsTest, MeanVarianceMae) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2}, {2, 4}), 1.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 2.5);
}

TEST(StatsTest, OnlineStatsTracksExtremes) {
  OnlineStats s;
  s.Add(3);
  s.Add(-1);
  s.Add(10);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), -1);
  EXPECT_DOUBLE_EQ(s.max(), 10);
  EXPECT_DOUBLE_EQ(s.sum(), 12);
  EXPECT_NEAR(s.mean(), 4.0, 1e-12);
}

TEST(StatsTest, NormalizeHistogram) {
  std::vector<double> h = NormalizeHistogram({1, 3});
  EXPECT_DOUBLE_EQ(h[0], 0.25);
  EXPECT_DOUBLE_EQ(h[1], 0.75);
  std::vector<double> zero = NormalizeHistogram({0, 0, 0, 0});
  for (double v : zero) EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(NormalizeHistogram({}).empty());
}

TEST(SimTimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(Minutes(2), 120.0);
  EXPECT_DOUBLE_EQ(Hours(1), 3600.0);
  EXPECT_DOUBLE_EQ(Days(1), 86400.0);
  EXPECT_DOUBLE_EQ(HourOfDay(Days(1) + Hours(5)), 5.0);
  EXPECT_DOUBLE_EQ(TimeOfDay(Days(3)), 0.0);
}

TEST(TableTest, PrintsAlignedRowsAndCsv) {
  TablePrinter t("demo");
  t.SetHeader({"a", "bb"});
  t.AddRow({"1", "2"});
  t.AddRow({TablePrinter::Fmt(1.5, 1), TablePrinter::Pct(0.5, 0)});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("demo"), std::string::npos);
  EXPECT_NE(os.str().find("bb"), std::string::npos);
  EXPECT_EQ(t.ToCsv(), "a,bb\n1,2\n1.5,50%\n");
  EXPECT_EQ(TablePrinter::Usd(14.9), "$14.90");
}

}  // namespace
}  // namespace sky
