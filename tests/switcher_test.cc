#include "core/switcher.h"

#include <gtest/gtest.h>

#include "ml/kmeans.h"

namespace sky::core {
namespace {

/// Hand-built fixture: 2 categories, 3 configs (cheap/mid/expensive).
ContentCategories MakeCategories() {
  ml::KMeansModel km;
  // Centers indexed [category][config].
  km.centers = {{0.90, 0.95, 0.99},   // easy
                {0.25, 0.60, 0.95}};  // hard
  return ContentCategories::FromKMeans(std::move(km));
}

PlacementProfile Pp(double runtime, double usd, bool cloud) {
  PlacementProfile p;
  p.runtime_s = runtime;
  p.cloud_usd = usd;
  p.onprem_core_s = runtime;
  p.placement.node_loc.assign(2, cloud ? dag::Loc::kCloud : dag::Loc::kOnPrem);
  if (cloud) p.placement.node_loc[0] = dag::Loc::kOnPrem;
  return p;
}

std::vector<ConfigProfile> MakeProfiles() {
  std::vector<ConfigProfile> profiles(3);
  // Cheap: sub-real-time on-prem only.
  profiles[0].work_core_s_per_video_s = 0.5;
  profiles[0].placements = {Pp(1.0, 0.0, false)};
  // Mid: slightly super-real-time on-prem, fast with cloud.
  profiles[1].work_core_s_per_video_s = 3.0;
  profiles[1].placements = {Pp(2.5, 0.0, false), Pp(1.5, 0.02, true)};
  // Expensive: far over real-time on-prem, near-real-time with cloud.
  profiles[2].work_core_s_per_video_s = 10.0;
  profiles[2].placements = {Pp(7.0, 0.0, false), Pp(2.2, 0.08, true)};
  return profiles;
}

KnobPlan MakePlan(std::vector<std::vector<double>> alpha) {
  KnobPlan plan;
  plan.alpha = ml::Matrix(alpha.size(), alpha[0].size());
  for (size_t c = 0; c < alpha.size(); ++c) plan.alpha.SetRow(c, alpha[c]);
  return plan;
}

SwitchContext BaseCtx() {
  SwitchContext ctx;
  ctx.current_config_idx = 0;
  ctx.segment_seconds = 2.0;
  ctx.bytes_per_video_second = 100e3;
  ctx.buffer_capacity_bytes = 4ull << 30;
  ctx.cloud_credits_remaining_usd = 10.0;
  return ctx;
}

TEST(SwitcherTest, RequiresPlan) {
  ContentCategories cats = MakeCategories();
  std::vector<ConfigProfile> profiles = MakeProfiles();
  KnobSwitcher sw(&cats, &profiles);
  EXPECT_FALSE(sw.Decide(BaseCtx()).ok());
}

TEST(SwitcherTest, ClassifiesCategoryFromQuality) {
  ContentCategories cats = MakeCategories();
  std::vector<ConfigProfile> profiles = MakeProfiles();
  KnobSwitcher sw(&cats, &profiles);
  KnobPlan plan = MakePlan({{1, 0, 0}, {0, 0, 1}});
  sw.SetPlan(&plan);

  // Cheap config reporting 0.88 -> easy category (center 0.90 vs 0.25).
  SwitchContext ctx = BaseCtx();
  ctx.measured_quality = 0.88;
  auto d = sw.Decide(ctx);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->category, 0u);
  EXPECT_EQ(d->config_idx, 0u);

  // Cheap config reporting 0.3 -> hard category -> expensive config.
  ctx.measured_quality = 0.30;
  d = sw.Decide(ctx);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->category, 1u);
  EXPECT_EQ(d->planned_config_idx, 2u);
}

TEST(SwitcherTest, Eq6TracksPlannedHistogram) {
  ContentCategories cats = MakeCategories();
  std::vector<ConfigProfile> profiles = MakeProfiles();
  KnobSwitcher sw(&cats, &profiles);
  // Easy content: 50/50 between cheap and mid.
  KnobPlan plan = MakePlan({{0.5, 0.5, 0.0}, {0, 0, 1}});
  sw.SetPlan(&plan);

  SwitchContext ctx = BaseCtx();
  ctx.measured_quality = 0.9;
  std::vector<size_t> used(3, 0);
  for (int i = 0; i < 40; ++i) {
    auto d = sw.Decide(ctx);
    ASSERT_TRUE(d.ok());
    sw.RecordUsage(d->category, d->config_idx);
    ++used[d->config_idx];
  }
  EXPECT_EQ(used[0], 20u);
  EXPECT_EQ(used[1], 20u);
  EXPECT_EQ(used[2], 0u);
}

TEST(SwitcherTest, CheapestFeasiblePlacementPicked) {
  ContentCategories cats = MakeCategories();
  std::vector<ConfigProfile> profiles = MakeProfiles();
  KnobSwitcher sw(&cats, &profiles);
  KnobPlan plan = MakePlan({{0, 0, 1}, {0, 0, 1}});
  sw.SetPlan(&plan);

  // Huge buffer: the free on-prem placement of the expensive config works.
  SwitchContext ctx = BaseCtx();
  ctx.measured_quality = 0.9;
  auto d = sw.Decide(ctx);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->config_idx, 2u);
  EXPECT_EQ(d->placement_idx, 0u);
  EXPECT_FALSE(d->degraded);

  // Tiny buffer: on-prem would overflow; the cloud placement still lags
  // 0.2 s/segment, so with zero lag it fits a small-but-nonzero buffer.
  ctx.buffer_capacity_bytes = 100e3;  // 1 second of video
  d = sw.Decide(ctx);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->config_idx, 2u);
  EXPECT_EQ(d->placement_idx, 1u);
}

TEST(SwitcherTest, DegradesWhenNothingFits) {
  ContentCategories cats = MakeCategories();
  std::vector<ConfigProfile> profiles = MakeProfiles();
  KnobSwitcher sw(&cats, &profiles);
  KnobPlan plan = MakePlan({{0, 0, 1}, {0, 0, 1}});
  sw.SetPlan(&plan);

  SwitchContext ctx = BaseCtx();
  ctx.measured_quality = 0.9;
  ctx.buffer_capacity_bytes = 0;   // no lag allowed at all
  ctx.allow_cloud = false;         // and no cloud
  auto d = sw.Decide(ctx);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->degraded);
  EXPECT_EQ(d->config_idx, 0u);  // only the cheap config runs real-time
}

TEST(SwitcherTest, CloudCreditsGateCloudPlacements) {
  ContentCategories cats = MakeCategories();
  std::vector<ConfigProfile> profiles = MakeProfiles();
  KnobSwitcher sw(&cats, &profiles);
  KnobPlan plan = MakePlan({{0, 0, 1}, {0, 0, 1}});
  sw.SetPlan(&plan);

  SwitchContext ctx = BaseCtx();
  ctx.measured_quality = 0.9;
  ctx.buffer_capacity_bytes = 100e3;
  ctx.cloud_credits_remaining_usd = 0.0;  // broke
  auto d = sw.Decide(ctx);
  ASSERT_TRUE(d.ok());
  // Cloud placements unaffordable -> must degrade off the expensive config.
  EXPECT_TRUE(d->degraded);
  EXPECT_NE(d->config_idx, 2u);
}

TEST(SwitcherTest, ExistingBacklogTightensFeasibility) {
  ContentCategories cats = MakeCategories();
  std::vector<ConfigProfile> profiles = MakeProfiles();
  KnobSwitcher sw(&cats, &profiles);
  KnobPlan plan = MakePlan({{0, 1, 0}, {0, 1, 0}});
  sw.SetPlan(&plan);

  SwitchContext ctx = BaseCtx();
  ctx.measured_quality = 0.9;
  ctx.buffer_capacity_bytes = 200e3;  // 2 seconds of video at 100 KB/s
  // Mid config's on-prem placement adds 0.5 s of lag (50 KB at the current
  // rate): with 120 KB already buffered that still fits.
  ctx.lag_seconds = 1.2;
  ctx.buffered_bytes = 120e3;
  auto d = sw.Decide(ctx);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->config_idx, 1u);
  EXPECT_EQ(d->placement_idx, 0u);
  // With 180 KB buffered, the on-prem placement's 50 KB growth overflows;
  // the cloud placement shrinks the backlog and stays feasible.
  ctx.lag_seconds = 1.8;
  ctx.buffered_bytes = 180e3;
  d = sw.Decide(ctx);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->config_idx, 1u);
  EXPECT_EQ(d->placement_idx, 1u);
}

TEST(SwitcherTest, CategoryOverrideBypassesClassification) {
  ContentCategories cats = MakeCategories();
  std::vector<ConfigProfile> profiles = MakeProfiles();
  KnobSwitcher sw(&cats, &profiles);
  KnobPlan plan = MakePlan({{1, 0, 0}, {0, 0, 1}});
  sw.SetPlan(&plan);
  SwitchContext ctx = BaseCtx();
  ctx.measured_quality = 0.9;  // would classify easy
  ctx.category_override = 1;
  auto d = sw.Decide(ctx);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->category, 1u);
}

TEST(SwitcherTest, QualityOrderSortsByMeanCenterQuality) {
  ContentCategories cats = MakeCategories();
  std::vector<ConfigProfile> profiles = MakeProfiles();
  KnobSwitcher sw(&cats, &profiles);
  ASSERT_EQ(sw.quality_order().size(), 3u);
  EXPECT_EQ(sw.quality_order()[0], 2u);
  EXPECT_EQ(sw.quality_order()[1], 1u);
  EXPECT_EQ(sw.quality_order()[2], 0u);
}

TEST(SwitcherTest, PairsScannedBoundedByTotalPlacements) {
  ContentCategories cats = MakeCategories();
  std::vector<ConfigProfile> profiles = MakeProfiles();
  KnobSwitcher sw(&cats, &profiles);
  KnobPlan plan = MakePlan({{0, 0, 1}, {0, 0, 1}});
  sw.SetPlan(&plan);
  SwitchContext ctx = BaseCtx();
  ctx.measured_quality = 0.9;
  ctx.buffer_capacity_bytes = 0;
  ctx.allow_cloud = false;
  auto d = sw.Decide(ctx);
  ASSERT_TRUE(d.ok());
  size_t total_placements = 0;
  for (const auto& p : profiles) total_placements += p.placements.size();
  EXPECT_LE(d->pairs_scanned, total_placements);
  EXPECT_GE(d->pairs_scanned, 3u);  // had to walk past infeasible configs
}

}  // namespace
}  // namespace sky::core
