#include "dag/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace sky::dag {
namespace {

TEST(ExecutorTest, RunsNodesInDependencyOrder) {
  TaskGraph g;
  std::atomic<int> step{0};
  std::atomic<int> a_step{-1}, b_step{-1}, c_step{-1};
  TaskNode a;
  a.name = "a";
  a.work = [&] { a_step = step.fetch_add(1); };
  TaskNode b;
  b.name = "b";
  b.work = [&] { b_step = step.fetch_add(1); };
  TaskNode c;
  c.name = "c";
  c.work = [&] { c_step = step.fetch_add(1); };
  size_t ia = g.AddNode(a);
  size_t ib = g.AddNode(b);
  size_t ic = g.AddNode(c);
  ASSERT_TRUE(g.AddEdge(ia, ib).ok());
  ASSERT_TRUE(g.AddEdge(ib, ic).ok());

  ThreadPool pool(4);
  auto report = ExecuteDag(g, &pool);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(a_step.load(), b_step.load());
  EXPECT_LT(b_step.load(), c_step.load());
  EXPECT_EQ(report->finish_times_s.size(), 3u);
  EXPECT_GE(report->makespan_s, 0.0);
}

TEST(ExecutorTest, IndependentNodesRunInParallel) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    TaskNode n;
    n.name = "busy";
    n.work = [] { BusyWorkMillis(30); };
    g.AddNode(n);
  }
  ThreadPool pool(4);
  auto report = ExecuteDag(g, &pool);
  ASSERT_TRUE(report.ok());
  // Four 30 ms tasks on four threads should take well under 4 * 30 ms.
  EXPECT_LT(report->makespan_s, 0.100);
}

TEST(ExecutorTest, ChainSerializes) {
  TaskGraph g;
  size_t prev = std::numeric_limits<size_t>::max();
  for (int i = 0; i < 3; ++i) {
    TaskNode n;
    n.name = "busy";
    n.work = [] { BusyWorkMillis(20); };
    size_t idx = g.AddNode(n);
    if (prev != std::numeric_limits<size_t>::max()) {
      ASSERT_TRUE(g.AddEdge(prev, idx).ok());
    }
    prev = idx;
  }
  ThreadPool pool(4);
  auto report = ExecuteDag(g, &pool);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->makespan_s, 0.055);  // ~3 x 20 ms serial
}

TEST(ExecutorTest, EmptyGraphAndNullPool) {
  TaskGraph g;
  ThreadPool pool(1);
  auto report = ExecuteDag(g, &pool);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->makespan_s, 0.0);
  EXPECT_FALSE(ExecuteDag(g, nullptr).ok());
}

TEST(ExecutorTest, RejectsCyclicGraph) {
  TaskGraph g;
  size_t a = g.AddNode(TaskNode{});
  size_t b = g.AddNode(TaskNode{});
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, a).ok());
  ThreadPool pool(1);
  EXPECT_FALSE(ExecuteDag(g, &pool).ok());
}

TEST(ExecutorTest, BusyWorkDurationRoughlyAccurate) {
  auto start = std::chrono::steady_clock::now();
  BusyWorkMillis(50);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.045);
  EXPECT_LT(elapsed, 0.5);
}

}  // namespace
}  // namespace sky::dag
