// The StreamSet sharded barrier scheduler. Gates:
//  - joint-mode results are BITWISE identical across worker counts
//    {1, 2, 8} — and to the single-threaded Step()-driven lockstep path —
//    including full traces (the determinism invariant of the scheduler);
//  - a stream whose engine fails mid-run (error Status or a throwing
//    workload) is recorded per-stream without deadlocking the boundary
//    barrier: every other stream still completes, bitwise unchanged;
//  - plan-boundary latency instrumentation records one sample per joint
//    boundary regardless of the driver.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/multi_stream.h"
#include "dag/thread_pool.h"
#include "workloads/ev_counting.h"

namespace sky::core {
namespace {

/// EvCountingWorkload that throws from MeasuredQuality once armed — the
/// "user UDF crashed mid-run" stand-in. Same seed => same content process,
/// so a model fitted on the plain workload stays valid for this one.
class ThrowingWorkload : public workloads::EvCountingWorkload {
 public:
  explicit ThrowingWorkload(uint64_t seed)
      : workloads::EvCountingWorkload(seed) {}

  /// Throw on the `n`-th MeasuredQuality call from now; < 0 disarms.
  void ArmAfter(long n) { remaining_ = n; }

  double MeasuredQuality(const KnobConfig& config,
                         const video::ContentState& content,
                         Rng* rng) const override {
    if (remaining_ >= 0 && remaining_-- == 0) {
      throw std::runtime_error("injected workload failure");
    }
    return workloads::EvCountingWorkload::MeasuredQuality(config, content,
                                                          rng);
  }

 private:
  mutable long remaining_ = -1;
};

class StreamSetParallelTest : public ::testing::Test {
 protected:
  static constexpr size_t kStreams = 5;

  static void SetUpTestSuite() {
    cluster_.cores = 4;
    cost_model_ = new sim::CostModel(1.8);
    OfflineOptions opts;
    opts.segment_seconds = 4.0;
    opts.train_horizon = Days(3);
    opts.num_categories = 3;
    opts.train_forecaster = false;  // keep the fixture fast
    for (size_t s = 0; s < kStreams; ++s) {
      workloads_[s] =
          new workloads::EvCountingWorkload(static_cast<uint64_t>(8400 + s));
      auto model =
          RunOfflinePhase(*workloads_[s], cluster_, *cost_model_, opts);
      ASSERT_TRUE(model.ok()) << model.status().ToString();
      models_[s] = new OfflineModel(std::move(*model));
    }
  }
  static void TearDownTestSuite() {
    for (size_t s = 0; s < kStreams; ++s) {
      delete models_[s];
      delete workloads_[s];
    }
    delete cost_model_;
  }

  static std::vector<StreamEngineJob> MakeJobs() {
    std::vector<StreamEngineJob> jobs;
    for (size_t s = 0; s < kStreams; ++s) {
      StreamEngineJob job;
      job.workload = workloads_[s];
      job.model = models_[s];
      job.cluster = cluster_;
      job.cost_model = cost_model_;
      job.options.duration = Hours(6);
      job.options.plan_interval = Hours(2);
      job.options.cloud_budget_usd_per_interval = 1.0;
      // Traces make the bitwise comparison maximally sensitive: every
      // sampled point of every stream must match.
      job.options.record_trace = true;
      job.options.trace_resolution_s = 300.0;
      job.start_time = Days(3);
      jobs.push_back(job);
    }
    return jobs;
  }

  static workloads::EvCountingWorkload* workloads_[kStreams];
  static OfflineModel* models_[kStreams];
  static sim::ClusterSpec cluster_;
  static sim::CostModel* cost_model_;
};

workloads::EvCountingWorkload* StreamSetParallelTest::workloads_[kStreams] =
    {};
OfflineModel* StreamSetParallelTest::models_[kStreams] = {};
sim::ClusterSpec StreamSetParallelTest::cluster_;
sim::CostModel* StreamSetParallelTest::cost_model_ = nullptr;

TEST_F(StreamSetParallelTest, JointResultsBitwiseIdenticalAcrossWorkerCounts) {
  // Reference: the segment-at-a-time Step() driver — the single-threaded
  // lockstep path the scheduler must reproduce exactly.
  auto reference = StreamSet::Create(MakeJobs(), StreamSetOptions{});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  while (!reference->Done()) ASSERT_TRUE(reference->Step().ok());
  auto ref_results = reference->Results();
  ASSERT_EQ(ref_results.size(), kStreams);
  size_t boundaries = reference->boundary_latencies_ms().size();
  EXPECT_EQ(boundaries, 3u);  // 6 h / 2 h intervals

  // Worker counts 1 (no pool), 2 (caller + 1 pool thread), 8 (caller + 7).
  dag::ThreadPool pool_of_1(1);
  dag::ThreadPool pool_of_7(7);
  struct Case {
    const char* label;
    dag::ThreadPool* pool;
  } cases[] = {{"1 worker", nullptr},
               {"2 workers", &pool_of_1},
               {"8 workers", &pool_of_7}};
  for (const Case& c : cases) {
    auto set = StreamSet::Create(MakeJobs(), StreamSetOptions{});
    ASSERT_TRUE(set.ok());
    ASSERT_TRUE(set->RunToCompletion(c.pool).ok()) << c.label;
    ASSERT_TRUE(set->Done()) << c.label;
    EXPECT_EQ(set->boundary_latencies_ms().size(), boundaries) << c.label;
    auto results = set->Results();
    ASSERT_EQ(results.size(), kStreams);
    for (size_t v = 0; v < kStreams; ++v) {
      ASSERT_TRUE(ref_results[v].ok() && results[v].ok());
      EXPECT_TRUE(EngineResultsIdentical(*ref_results[v], *results[v]))
          << c.label << ", stream " << v;
    }
  }
}

TEST_F(StreamSetParallelTest, MidRunEngineErrorDoesNotDeadlockTheBarrier) {
  // Reference for the healthy streams.
  auto reference = StreamSet::Create(MakeJobs(), StreamSetOptions{});
  ASSERT_TRUE(reference.ok());
  while (!reference->Done()) ASSERT_TRUE(reference->Step().ok());
  auto ref_results = reference->Results();

  // Stream 2's workload starts throwing mid-run (well past Start()'s single
  // measurement, well before the run ends). The worker that owns it must
  // record the error and keep arriving at the barrier for its peers.
  ThrowingWorkload bad(8402);
  std::vector<StreamEngineJob> jobs = MakeJobs();
  jobs[2].workload = &bad;
  auto set = StreamSet::Create(jobs, StreamSetOptions{});
  ASSERT_TRUE(set.ok());
  bad.ArmAfter(40);
  dag::ThreadPool pool(7);
  ASSERT_TRUE(set->RunToCompletion(&pool).ok());
  ASSERT_TRUE(set->Done());

  auto results = set->Results();
  ASSERT_EQ(results.size(), kStreams);
  EXPECT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].status().code(), StatusCode::kInternal);
  for (size_t v = 0; v < kStreams; ++v) {
    if (v == 2) continue;
    ASSERT_TRUE(results[v].ok()) << "stream " << v;
  }
}

TEST_F(StreamSetParallelTest, FailedStreamLeavesSurvivorsReplannedNotStuck) {
  // After the poisoned stream dies, the remaining boundaries must still be
  // solved (over the shrunken stream set) — survivors finish every segment.
  ThrowingWorkload bad(8400);
  std::vector<StreamEngineJob> jobs = MakeJobs();
  jobs[0].workload = &bad;
  auto set = StreamSet::Create(jobs, StreamSetOptions{});
  ASSERT_TRUE(set.ok());
  bad.ArmAfter(10);
  dag::ThreadPool pool(3);
  ASSERT_TRUE(set->RunToCompletion(&pool).ok());
  ASSERT_TRUE(set->Done());
  size_t expected_segments = static_cast<size_t>(Hours(6) / 4.0);
  auto results = set->Results();
  EXPECT_FALSE(results[0].ok());
  for (size_t v = 1; v < kStreams; ++v) {
    ASSERT_TRUE(results[v].ok()) << "stream " << v;
    EXPECT_EQ(results[v]->segments, expected_segments);
  }
}

}  // namespace
}  // namespace sky::core
