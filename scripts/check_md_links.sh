#!/usr/bin/env bash
# Docs gate: fail when any relative markdown link in a tracked *.md file
# points at a path that does not exist. Pure grep/sed, no network — external
# links (http/https/mailto) and pure #anchors are skipped, not fetched.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r md; do
  dir=$(dirname "$md")
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"   # drop an anchor suffix
    path="${path%% *}"     # drop an optional "title" part
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $md -> $target"
      fail=1
    fi
  done < <(
    # Drop fenced (```) and indented code blocks first: C++ snippets are
    # full of `operator[](const T&)`-style text that parses like a link.
    awk '/^(```|~~~)/ { fence = !fence; next }
         fence || /^(    |\t)/ { next }
         { print }' "$md" |
      grep -oE '\]\([^)]+\)' 2>/dev/null | sed -E 's/^\]\(//; s/\)$//'
  )
done < <(git ls-files '*.md')

if [ "$fail" -ne 0 ]; then
  echo "check_md_links: broken relative links found" >&2
else
  echo "check_md_links: all relative markdown links resolve"
fi
exit "$fail"
