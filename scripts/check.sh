#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the test suite (which includes the
# session/StreamSet parity gates: session_test, stream_set_test, api_test).
# Mirrors CI. Follows with the gating benches so the trajectory
# (BENCH_planner_scaling.json, BENCH_forecast_training.json,
# BENCH_appd_multistream.json) is refreshed on every local check; all exit
# non-zero when a perf or parity gate fails — bench_appd_multistream gates
# that StreamSet's independent mode reproduces the standalone engines
# bitwise while reporting the joint-vs-independent quality/cost deltas.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
cd build && ctest --output-on-failure -j
./bench_planner_scaling
./bench_forecast_training
./bench_appd_multistream
