#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the test suite. Mirrors CI.
# Follows with the perf-tracking benches so the trajectory
# (BENCH_planner_scaling.json, BENCH_forecast_training.json) is refreshed
# on every local check; both exit non-zero when a perf or parity gate fails.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
cd build && ctest --output-on-failure -j
./bench_planner_scaling
./bench_forecast_training
