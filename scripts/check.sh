#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the test suite (which includes the
# session/StreamSet parity gates — session_test, stream_set_test, api_test —
# and the model-persistence round-trip/ingest-parity gates in
# model_io_test). Mirrors CI.
#
# After the tests: a smoke test of the `sky` CLI's train-once / serve-many
# flow (offline -> save -> load -> ingest as separate processes), the docs
# link check, and the gating benches so the trajectory
# (BENCH_planner_scaling.json, BENCH_forecast_training.json,
# BENCH_appd_multistream.json, BENCH_table3_offline_runtime.json,
# BENCH_forecast_inference.json — kernel-tier and f32-precision gates) is
# refreshed on every local check; all exit non-zero when a perf or parity
# gate fails.
# `--tsan` instead runs only the concurrency suite (thread pool, StreamSet
# scheduler, sessions, kernel-dispatch first use) under ThreadSanitizer in a
# separate build-tsan tree and skips the benches: it is a race detector
# pass, not a perf gate.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--tsan" ]]; then
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSKY_SANITIZE=thread -DSKY_BUILD_BENCHES=OFF -DSKY_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  cd build-tsan
  ctest --output-on-failure -j \
    -R "thread_pool_test|stream_set_test|stream_set_parallel_test|session_test|kernels_test"
  echo "TSan concurrency suite passed"
  exit 0
fi

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
cd build && ctest --output-on-failure -j

# sky CLI smoke test: train in one process, serve from the saved file in
# another — the end-to-end flow of the train-once / serve-many split.
SKY_SMOKE_MODEL=$(mktemp /tmp/sky_smoke_model.XXXXXX.bin)
trap 'rm -f "${SKY_SMOKE_MODEL}"' EXIT
./sky offline --workload ev --out "${SKY_SMOKE_MODEL}" \
  --train-days 3 --plan-days 1 --categories 3
./sky inspect --model "${SKY_SMOKE_MODEL}"
./sky ingest --model "${SKY_SMOKE_MODEL}" --workload ev --duration-days 0.25
# A model trained for another workload must be refused.
if ./sky ingest --model "${SKY_SMOKE_MODEL}" --workload covid \
    --duration-days 0.25 >/dev/null 2>&1; then
  echo "sky ingest accepted a model for the wrong workload" >&2
  exit 1
fi
echo "sky CLI smoke test passed"

cd ..
scripts/check_md_links.sh
cd build

./bench_planner_scaling
./bench_forecast_training
./bench_appd_multistream
./bench_table3_offline_runtime
./bench_forecast_inference
