#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the test suite (which includes the
# session/StreamSet parity gates — session_test, stream_set_test, api_test —
# and the model-persistence round-trip/ingest-parity gates in
# model_io_test). Mirrors CI.
#
# After the tests: a smoke test of the `sky` CLI's train-once / serve-many
# flow (offline -> save -> load -> ingest as separate processes), the docs
# link check, and the gating benches so the trajectory
# (BENCH_planner_scaling.json, BENCH_forecast_training.json,
# BENCH_appd_multistream.json, BENCH_table3_offline_runtime.json,
# BENCH_forecast_inference.json — kernel-tier and f32-precision gates —
# and BENCH_fault_robustness.json — quality-under-faults and recovery
# parity gates) is refreshed on every local check; all exit non-zero when a
# perf or parity gate fails.
# `--tsan` instead runs only the concurrency suite (thread pool, StreamSet
# scheduler, sessions, kernel-dispatch first use) under ThreadSanitizer in a
# separate build-tsan tree and skips the benches: it is a race detector
# pass, not a perf gate.
# `--asan` runs the FULL test suite under AddressSanitizer in a separate
# build-asan tree (also bench-free): a memory-error pass over everything,
# including the new fault-injection and crash-recovery suites, whose
# restore/replay paths are exactly where lifetime bugs would hide.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--tsan" ]]; then
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSKY_SANITIZE=thread -DSKY_BUILD_BENCHES=OFF -DSKY_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  cd build-tsan
  ctest --output-on-failure -j \
    -R "thread_pool_test|stream_set_test|stream_set_parallel_test|session_test|kernels_test"
  echo "TSan concurrency suite passed"
  exit 0
fi

if [[ "${1:-}" == "--asan" ]]; then
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSKY_SANITIZE=address -DSKY_BUILD_BENCHES=OFF -DSKY_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j
  cd build-asan
  ctest --output-on-failure -j
  echo "ASan full suite passed"
  exit 0
fi

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
cd build && ctest --output-on-failure -j

# sky CLI smoke test: train in one process, serve from the saved file in
# another — the end-to-end flow of the train-once / serve-many split — then
# the error-hygiene contract: each failure class exits with ITS documented
# code (3 I/O, 4 corrupt, 5 wrong workload) and writes nothing to stdout.
SKY_SMOKE_MODEL=$(mktemp /tmp/sky_smoke_model.XXXXXX.bin)
SKY_SMOKE_CORRUPT=$(mktemp /tmp/sky_smoke_corrupt.XXXXXX.bin)
trap 'rm -f "${SKY_SMOKE_MODEL}" "${SKY_SMOKE_CORRUPT}"' EXIT
./sky offline --workload ev --out "${SKY_SMOKE_MODEL}" \
  --train-days 3 --plan-days 1 --categories 3
./sky inspect --model "${SKY_SMOKE_MODEL}"
./sky ingest --model "${SKY_SMOKE_MODEL}" --workload ev --duration-days 0.25

# expect_exit CODE cmd...: the command must fail with exactly CODE and keep
# stdout empty (failures are one stderr line, never partial output).
expect_exit() {
  local want=$1; shift
  local got=0 out
  out=$("$@" 2>/dev/null) || got=$?
  if [[ ${got} -ne ${want} ]]; then
    echo "expected exit ${want} from: $*  (got ${got})" >&2
    exit 1
  fi
  if [[ -n "${out}" ]]; then
    echo "expected empty stdout from: $*  (got: ${out})" >&2
    exit 1
  fi
}

# Missing model file -> I/O failure (3).
expect_exit 3 ./sky ingest --model /nonexistent/model.bin --workload ev \
  --duration-days 0.25
# Flipped bytes in the middle of the file -> corrupt model (4).
cp "${SKY_SMOKE_MODEL}" "${SKY_SMOKE_CORRUPT}"
printf '\xde\xad\xbe\xef' |
  dd of="${SKY_SMOKE_CORRUPT}" bs=1 seek=64 conv=notrunc status=none
expect_exit 4 ./sky ingest --model "${SKY_SMOKE_CORRUPT}" --workload ev \
  --duration-days 0.25
# A model trained for another workload must be refused (5).
expect_exit 5 ./sky ingest --model "${SKY_SMOKE_MODEL}" --workload covid \
  --duration-days 0.25
echo "sky CLI smoke test passed"

cd ..
scripts/check_md_links.sh
cd build

./bench_planner_scaling
./bench_forecast_training
./bench_appd_multistream
./bench_table3_offline_runtime
./bench_forecast_inference
./bench_fault_robustness
