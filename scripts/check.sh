#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the test suite (which includes the
# session/StreamSet parity gates — session_test, stream_set_test, api_test —
# and the model-persistence round-trip/ingest-parity gates in
# model_io_test). Mirrors CI.
#
# After the tests: a smoke test of the `sky` CLI's train-once / serve-many
# flow (offline -> save -> load -> ingest as separate processes), the CLI
# hygiene contract (--help on stdout, usage errors exit 2), the `sky serve`
# smoke (concurrent clients, metrics, kill -9 + SIGTERM recovery bitwise),
# the docs link check, and the gating benches so the trajectory
# (BENCH_planner_scaling.json, BENCH_forecast_training.json,
# BENCH_appd_multistream.json, BENCH_table3_offline_runtime.json,
# BENCH_forecast_inference.json — kernel-tier and f32-precision gates —
# BENCH_fault_robustness.json — quality-under-faults and recovery parity
# gates — and BENCH_serve.json — serve-vs-in-process overhead gate) is
# refreshed on every local check; all exit non-zero when a perf or parity
# gate fails.
# `--tsan` instead runs only the concurrency suite (thread pool, StreamSet
# scheduler, sessions, kernel-dispatch first use) under ThreadSanitizer in a
# separate build-tsan tree and skips the benches: it is a race detector
# pass, not a perf gate.
# `--props` runs only the randomized property suites (property_test,
# placement_search_test, scenario_test) with a fresh SKY_PROP_SEED — a
# different slice of the instance space each run. The chosen seed is logged,
# written to build/PROPS_SEED.txt for artifact upload, and a one-line
# reproduce command is printed if the suite fails. `--props SEED` pins it.
# `--asan` runs the FULL test suite under AddressSanitizer in a separate
# build-asan tree (also bench-free): a memory-error pass over everything,
# including the new fault-injection and crash-recovery suites, whose
# restore/replay paths are exactly where lifetime bugs would hide.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--tsan" ]]; then
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSKY_SANITIZE=thread -DSKY_BUILD_BENCHES=OFF -DSKY_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  cd build-tsan
  ctest --output-on-failure \
    -R "thread_pool_test|stream_set_test|stream_set_parallel_test|stream_set_membership_test|session_test|kernels_test|serve_test" \
    -j
  echo "TSan concurrency suite passed"
  exit 0
fi

if [[ "${1:-}" == "--props" ]]; then
  # Seed precedence: explicit argument > SKY_PROP_SEED already in the
  # environment > a fresh draw. Logged up front and persisted so a CI
  # failure is reproducible from the artifact alone.
  SEED="${2:-${SKY_PROP_SEED:-$(( (RANDOM << 15) ^ RANDOM ^ $$ ))}}"
  echo "property suites: SKY_PROP_SEED=${SEED}"
  echo "reproduce: SKY_PROP_SEED=${SEED} scripts/check.sh --props ${SEED}"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j
  echo "${SEED}" > build/PROPS_SEED.txt
  cd build
  SKY_PROP_SEED="${SEED}" ctest --output-on-failure \
    -R "property_test|placement_search_test|scenario_test" -j ||
    { echo "property suites FAILED; reproduce with:" >&2
      echo "  SKY_PROP_SEED=${SEED} scripts/check.sh --props ${SEED}" >&2
      exit 1; }
  echo "property suites passed (SKY_PROP_SEED=${SEED})"
  exit 0
fi

if [[ "${1:-}" == "--asan" ]]; then
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSKY_SANITIZE=address -DSKY_BUILD_BENCHES=OFF -DSKY_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j
  cd build-asan
  ctest --output-on-failure -j
  echo "ASan full suite passed"
  exit 0
fi

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
cd build && ctest --output-on-failure -j

# sky CLI smoke test: train in one process, serve from the saved file in
# another — the end-to-end flow of the train-once / serve-many split — then
# the error-hygiene contract: each failure class exits with ITS documented
# code (3 I/O, 4 corrupt, 5 wrong workload) and writes nothing to stdout.
SKY_SMOKE_MODEL=$(mktemp /tmp/sky_smoke_model.XXXXXX.bin)
SKY_SMOKE_CORRUPT=$(mktemp /tmp/sky_smoke_corrupt.XXXXXX.bin)
trap 'rm -f "${SKY_SMOKE_MODEL}" "${SKY_SMOKE_CORRUPT}"' EXIT
./sky offline --workload ev --out "${SKY_SMOKE_MODEL}" \
  --train-days 3 --plan-days 1 --categories 3
./sky inspect --model "${SKY_SMOKE_MODEL}"
./sky ingest --model "${SKY_SMOKE_MODEL}" --workload ev --duration-days 0.25

# expect_exit CODE cmd...: the command must fail with exactly CODE and keep
# stdout empty (failures are one stderr line, never partial output).
expect_exit() {
  local want=$1; shift
  local got=0 out
  out=$("$@" 2>/dev/null) || got=$?
  if [[ ${got} -ne ${want} ]]; then
    echo "expected exit ${want} from: $*  (got ${got})" >&2
    exit 1
  fi
  if [[ -n "${out}" ]]; then
    echo "expected empty stdout from: $*  (got: ${out})" >&2
    exit 1
  fi
}

# Missing model file -> I/O failure (3).
expect_exit 3 ./sky ingest --model /nonexistent/model.bin --workload ev \
  --duration-days 0.25
# Flipped bytes in the middle of the file -> corrupt model (4).
cp "${SKY_SMOKE_MODEL}" "${SKY_SMOKE_CORRUPT}"
printf '\xde\xad\xbe\xef' |
  dd of="${SKY_SMOKE_CORRUPT}" bs=1 seek=64 conv=notrunc status=none
expect_exit 4 ./sky ingest --model "${SKY_SMOKE_CORRUPT}" --workload ev \
  --duration-days 0.25
# A model trained for another workload must be refused (5).
expect_exit 5 ./sky ingest --model "${SKY_SMOKE_MODEL}" --workload covid \
  --duration-days 0.25
echo "sky CLI smoke test passed"

# CLI hygiene: every subcommand answers --help on stdout (exit 0); unknown
# flags, subcommands, client verbs and a missing required flag are usage
# errors (exit 2) that keep stdout empty.
for sub in offline ingest inspect serve client; do
  ./sky "${sub}" --help | grep -q "^usage: sky ${sub}" ||
    { echo "sky ${sub} --help did not print usage" >&2; exit 1; }
done
expect_exit 2 ./sky frobnicate
expect_exit 2 ./sky ingest --model "${SKY_SMOKE_MODEL}" --bogus-flag
expect_exit 2 ./sky client frobnicate --port 1
expect_exit 2 ./sky client open
echo "sky CLI hygiene smoke passed"

# `sky serve` smoke: a live server multiplexes two concurrent client
# sessions (metrics frame checked); the same pair is then re-run under
# periodic checkpointing, killed -9 mid-run, recovered with --recover, and
# finally drained by SIGTERM and recovered once more — every recovered
# result must carry the uninterrupted run's bitwise fingerprint.
SKY_SERVE_DIR=$(mktemp -d /tmp/sky_serve_smoke.XXXXXX)
SKY_SERVE_PID=""
trap 'rm -f "${SKY_SMOKE_MODEL}" "${SKY_SMOKE_CORRUPT}"
      rm -rf "${SKY_SERVE_DIR}"
      [[ -n "${SKY_SERVE_PID}" ]] && kill -9 "${SKY_SERVE_PID}" 2>/dev/null
      true' EXIT

serve_wait_port() {  # serve_wait_port PORT_FILE -> echoes the bound port
  local pf=$1 i
  for i in $(seq 1 100); do
    [[ -s "${pf}" ]] && { cat "${pf}"; return 0; }
    sleep 0.1
  done
  echo "server never wrote ${pf}" >&2
  return 1
}

fingerprints() {  # fingerprints OUT FILES... -> sorted `result fnv1a` values
  local out=$1; shift
  grep -h 'result fnv1a' "$@" | awk '{print $NF}' | sort > "${out}"
  [[ -s "${out}" ]]
}

OPEN_FLAGS=(--workload ev --duration-days 2 --plan-interval-days 0.25
            --record-trace)

# Reference run: uninterrupted server, two genuinely concurrent clients.
./sky serve --model "${SKY_SMOKE_MODEL}" \
  --port-file "${SKY_SERVE_DIR}/ref.port" --start-after 2 &
SKY_SERVE_PID=$!
PORT=$(serve_wait_port "${SKY_SERVE_DIR}/ref.port")
./sky client open --port "${PORT}" --content-seed 11 "${OPEN_FLAGS[@]}" \
  --wait > "${SKY_SERVE_DIR}/ref1.txt" &
SKY_C1=$!
./sky client open --port "${PORT}" --content-seed 22 "${OPEN_FLAGS[@]}" \
  --wait > "${SKY_SERVE_DIR}/ref2.txt" &
SKY_C2=$!
wait "${SKY_C1}" "${SKY_C2}"
./sky client metrics --port "${PORT}" |
  grep -q '"sessions_accepted": 2' ||
  { echo "serve metrics missing the session counters" >&2; exit 1; }
./sky client drain --port "${PORT}"
wait "${SKY_SERVE_PID}"
SKY_SERVE_PID=""
fingerprints "${SKY_SERVE_DIR}/ref_fps.txt" \
  "${SKY_SERVE_DIR}/ref1.txt" "${SKY_SERVE_DIR}/ref2.txt"

# Interrupted run: kill -9 once the first auto-checkpoint exists, recover.
./sky serve --model "${SKY_SMOKE_MODEL}" \
  --port-file "${SKY_SERVE_DIR}/int.port" --start-after 2 \
  --checkpoint "${SKY_SERVE_DIR}/serve_ckpt.bin" --checkpoint-every 1 &
SKY_SERVE_PID=$!
PORT=$(serve_wait_port "${SKY_SERVE_DIR}/int.port")
./sky client open --port "${PORT}" --content-seed 11 "${OPEN_FLAGS[@]}"
./sky client open --port "${PORT}" --content-seed 22 "${OPEN_FLAGS[@]}"
for i in $(seq 1 100); do
  [[ -s "${SKY_SERVE_DIR}/serve_ckpt.bin" ]] && break
  sleep 0.1
done
kill -9 "${SKY_SERVE_PID}"
wait "${SKY_SERVE_PID}" 2>/dev/null || true
SKY_SERVE_PID=""

./sky serve --model "${SKY_SMOKE_MODEL}" \
  --port-file "${SKY_SERVE_DIR}/rec.port" \
  --recover "${SKY_SERVE_DIR}/serve_ckpt.bin" \
  --checkpoint "${SKY_SERVE_DIR}/serve_ckpt.bin" &
SKY_SERVE_PID=$!
PORT=$(serve_wait_port "${SKY_SERVE_DIR}/rec.port")
./sky client fetch --port "${PORT}" --session 1 > "${SKY_SERVE_DIR}/rec1.txt"
./sky client fetch --port "${PORT}" --session 2 > "${SKY_SERVE_DIR}/rec2.txt"
fingerprints "${SKY_SERVE_DIR}/rec_fps.txt" \
  "${SKY_SERVE_DIR}/rec1.txt" "${SKY_SERVE_DIR}/rec2.txt"
diff "${SKY_SERVE_DIR}/ref_fps.txt" "${SKY_SERVE_DIR}/rec_fps.txt" ||
  { echo "kill -9 recovery diverged from the uninterrupted run" >&2
    exit 1; }

# SIGTERM drains gracefully (exit 0, final checkpoint); the finished
# sessions' results must survive one more recover cycle bitwise.
kill -TERM "${SKY_SERVE_PID}"
wait "${SKY_SERVE_PID}"
SKY_SERVE_PID=""
./sky serve --model "${SKY_SMOKE_MODEL}" \
  --port-file "${SKY_SERVE_DIR}/rec2.port" \
  --recover "${SKY_SERVE_DIR}/serve_ckpt.bin" &
SKY_SERVE_PID=$!
PORT=$(serve_wait_port "${SKY_SERVE_DIR}/rec2.port")
./sky client fetch --port "${PORT}" --session 1 > "${SKY_SERVE_DIR}/sig1.txt"
./sky client fetch --port "${PORT}" --session 2 > "${SKY_SERVE_DIR}/sig2.txt"
./sky client drain --port "${PORT}"
wait "${SKY_SERVE_PID}"
SKY_SERVE_PID=""
fingerprints "${SKY_SERVE_DIR}/sig_fps.txt" \
  "${SKY_SERVE_DIR}/sig1.txt" "${SKY_SERVE_DIR}/sig2.txt"
diff "${SKY_SERVE_DIR}/ref_fps.txt" "${SKY_SERVE_DIR}/sig_fps.txt" ||
  { echo "post-SIGTERM recovery diverged from the uninterrupted run" >&2
    exit 1; }
echo "sky serve smoke test passed (kill -9 + SIGTERM recovery bitwise)"

cd ..
scripts/check_md_links.sh
cd build

./bench_planner_scaling
./bench_forecast_training
./bench_appd_multistream
./bench_table3_offline_runtime
./bench_forecast_inference
./bench_fault_robustness
./bench_serve
