#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the test suite. Mirrors CI.
# Follows with the planner-scaling bench so the perf trajectory
# (BENCH_planner_scaling.json) is refreshed on every local check.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
cd build && ctest --output-on-failure -j
./bench_planner_scaling
