// COVID-19 safety-measure monitoring (paper §5.2): pedestrian detection,
// tracking, social-distancing homography, and mask classification over a
// busy shopping-street camera.
//
// This example compares three deployments of the same job on the same
// 4-vCPU server:
//   1. the best static knob configuration that runs in real time,
//   2. Skyscraper with buffering only,
//   3. Skyscraper with buffering and cloud bursting.

#include <cstdio>
#include <iostream>

#include "baselines/static_baseline.h"
#include "core/engine.h"
#include "core/offline.h"
#include "util/table.h"
#include "workloads/covid.h"

int main() {
  std::printf("COVID monitoring on a shopping-street camera\n");

  sky::workloads::CovidWorkload covid;
  sky::sim::ClusterSpec cluster;
  cluster.cores = 4;
  sky::sim::CostModel cost_model(1.8);

  sky::core::OfflineOptions offline;
  offline.segment_seconds = 4.0;
  offline.train_horizon = sky::Days(8);
  offline.num_categories = 3;
  offline.forecaster.input_span = sky::Days(2);
  offline.forecaster.planned_interval = sky::Days(2);
  auto model = sky::core::RunOfflinePhase(covid, cluster, cost_model, offline);
  if (!model.ok()) {
    std::printf("offline phase failed: %s\n",
                model.status().ToString().c_str());
    return 1;
  }
  std::printf("offline phase done: %zu knob configurations on the Pareto "
              "frontier\n\n",
              model->configs.size());

  const sky::SimTime start = sky::Days(8);
  const sky::SimTime duration = sky::Days(2);

  sky::TablePrinter table("COVID: 2 days ingested on a 4-vCPU server");
  table.SetHeader({"deployment", "mean quality", "cloud $", "buffer peak",
                   "knob switches"});

  auto st = sky::baselines::BestStaticBaseline(covid, cluster, cost_model,
                                               4.0, duration, start);
  if (st.ok()) {
    table.AddRow({"static (best real-time config)",
                  sky::TablePrinter::Pct(st->mean_quality), "$0.00", "0 GB",
                  "0"});
  }

  for (bool cloud : {false, true}) {
    sky::core::EngineOptions run;
    run.duration = duration;
    run.plan_interval = sky::Days(2);
    run.enable_cloud = cloud;
    run.cloud_budget_usd_per_interval = cloud ? 3.0 : 0.0;
    sky::core::IngestionEngine engine(&covid, &*model, cluster, &cost_model,
                                      run);
    auto result = engine.Run(start);
    if (!result.ok()) {
      std::printf("run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    char peak[32];
    std::snprintf(peak, sizeof(peak), "%.2f GB",
                  result->buffer_high_water_bytes / 1e9);
    table.AddRow({cloud ? "Skyscraper (buffer + cloud)"
                        : "Skyscraper (buffer only)",
                  sky::TablePrinter::Pct(result->mean_quality),
                  sky::TablePrinter::Usd(result->cloud_usd), peak,
                  std::to_string(result->switch_count)});
  }

  table.Print(std::cout);
  std::printf("\nSkyscraper spends its work where the content is hard "
              "(occlusions at rush hour); the static config pays for peak "
              "provisioning around the clock.\n");
  return 0;
}
