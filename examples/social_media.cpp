// Social-media sentiment analysis (paper §5.2, MOSEI): a Twitch-like fleet
// of talking-head live streams is transcribed and classified for opinion
// sentiment. The number of live streams varies over the day and spikes.
//
// Demonstrates why the two workload-peak shapes need different remedies:
//   MOSEI-HIGH: short 62-stream peaks — shipping that many streams to the
//               cloud saturates the uplink, so the buffer must absorb them;
//   MOSEI-LONG: an 8-hour plateau — no buffer is large enough, so cloud
//               bursting must absorb it.

#include <cstdio>
#include <iostream>

#include "core/engine.h"
#include "core/offline.h"
#include "util/table.h"
#include "workloads/mosei.h"

namespace {

struct Variant {
  const char* name;
  bool buffer;
  bool cloud;
};

}  // namespace

int main() {
  std::printf("MOSEI social-media sentiment under workload spikes\n\n");

  sky::sim::ClusterSpec cluster;
  cluster.cores = 16;
  sky::sim::CostModel cost_model(1.8);

  for (auto kind : {sky::workloads::MoseiWorkload::SpikeKind::kHigh,
                    sky::workloads::MoseiWorkload::SpikeKind::kLong}) {
    sky::workloads::MoseiWorkload mosei(kind);

    sky::core::OfflineOptions offline;
    offline.segment_seconds = 7.0;
    offline.train_horizon = sky::Days(6);
    offline.num_categories = 5;
    offline.forecaster.input_span = sky::Days(1);
    offline.forecaster.planned_interval = sky::Days(1);
    auto model =
        sky::core::RunOfflinePhase(mosei, cluster, cost_model, offline);
    if (!model.ok()) {
      std::printf("offline phase failed: %s\n",
                  model.status().ToString().c_str());
      return 1;
    }

    sky::TablePrinter table(std::string(mosei.name()) +
                            ": 2 days on 16 vCPUs");
    table.SetHeader({"variant", "mean quality", "cloud $", "degradations"});
    for (const Variant& v : {Variant{"buffering only", true, false},
                             Variant{"cloud only", false, true},
                             Variant{"buffering + cloud", true, true}}) {
      sky::core::EngineOptions run;
      run.duration = sky::Days(2);
      run.plan_interval = sky::Days(1);
      run.enable_buffer = v.buffer;
      run.enable_cloud = v.cloud;
      run.cloud_budget_usd_per_interval = v.cloud ? 8.0 : 0.0;
      sky::core::IngestionEngine engine(&mosei, &*model, cluster, &cost_model,
                                        run);
      auto result = engine.Run(sky::Days(6));
      if (!result.ok()) {
        std::printf("run failed: %s\n", result.status().ToString().c_str());
        return 1;
      }
      table.AddRow({v.name, sky::TablePrinter::Pct(result->mean_quality),
                    sky::TablePrinter::Usd(result->cloud_usd),
                    std::to_string(result->degraded_count)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  std::printf("HIGH spikes favor the buffer (bandwidth chokes the cloud); "
              "the LONG plateau favors the cloud (it outlasts any buffer). "
              "Combining both handles either shape (§5.4).\n");
  return 0;
}
