// Traffic-intersection multi-object tracking (paper §5.2, MOT): a
// TransMOT-style tracker over a Tokyo intersection camera, with knobs for
// frame interval, tiling, history length and model size.
//
// Prints an hour-by-hour trace of one ingested day — the Fig. 3 style view:
// which knob configurations Skyscraper picks as traffic builds up, how the
// buffer fills during rush hour, and when cloud credits are spent.

#include <cstdio>
#include <iostream>

#include "core/engine.h"
#include "core/offline.h"
#include "util/table.h"
#include "workloads/mot.h"
#include "workloads/udf_costs.h"

int main() {
  std::printf("MOT ingestion over a traffic-intersection camera\n");

  sky::workloads::MotWorkload mot;
  sky::sim::ClusterSpec cluster;
  cluster.cores = 8;
  sky::sim::CostModel cost_model(1.8);

  sky::core::OfflineOptions offline;
  offline.segment_seconds = 4.0;
  offline.train_horizon = sky::Days(8);
  offline.num_categories = 3;
  offline.forecaster.input_span = sky::Days(2);
  offline.forecaster.planned_interval = sky::Days(2);
  auto model = sky::core::RunOfflinePhase(mot, cluster, cost_model, offline);
  if (!model.ok()) {
    std::printf("offline phase failed: %s\n",
                model.status().ToString().c_str());
    return 1;
  }

  sky::core::EngineOptions run;
  run.duration = sky::Days(1);
  run.plan_interval = sky::Days(1);
  run.cloud_budget_usd_per_interval = 2.0;
  run.record_trace = true;
  run.trace_resolution_s = 3600.0;  // one row per hour
  sky::core::IngestionEngine engine(&mot, &*model, cluster, &cost_model, run);
  auto result = engine.Run(sky::Days(8));
  if (!result.ok()) {
    std::printf("run failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  sky::TablePrinter table("One ingested day, hourly (Fig. 3 view)");
  table.SetHeader({"hour", "quality", "workload TFLOP/s", "buffer GB",
                   "cloud $ (cum)", "config"});
  for (const sky::core::TracePoint& p : result->trace) {
    char hour[16], tflops[16], buffer[16];
    std::snprintf(hour, sizeof(hour), "%02.0f:00", sky::HourOfDay(p.t));
    std::snprintf(tflops, sizeof(tflops), "%.2f",
                  p.work_core_s_per_s * sky::workloads::kTflopPerCoreSecond);
    std::snprintf(buffer, sizeof(buffer), "%.2f", p.buffer_bytes / 1e9);
    table.AddRow({hour, sky::TablePrinter::Pct(p.quality, 0), tflops, buffer,
                  sky::TablePrinter::Usd(p.cloud_usd_cumulative),
                  mot.knob_space().ToString(model->configs[p.config_idx])});
  }
  table.Print(std::cout);

  std::printf("\nday summary: mean quality %.1f%%, %zu knob switches, "
              "cloud spend $%.2f, buffer peak %.2f GB\n",
              100 * result->mean_quality, result->switch_count,
              result->cloud_usd, result->buffer_high_water_bytes / 1e9);
  return 0;
}
