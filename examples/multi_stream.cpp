// Multi-stream deployment (paper Appendix D): several cameras share one
// cloud-credit budget; the joint knob planner allocates credits to the
// streams where expensive configurations matter most.
//
// Three cameras run the EV-counting job: a quiet residential camera, a
// normal street, and a busy intersection. Each stream keeps its own content
// categories and forecast; only the planning LP is joint (Eqs. 7-9).

#include <cstdio>
#include <iostream>

#include "core/multi_stream.h"
#include "core/offline.h"
#include "dag/thread_pool.h"
#include "util/table.h"
#include "workloads/ev_counting.h"

int main() {
  std::printf("Joint knob planning for three camera streams (Appendix D)\n");

  // Three streams with different content mixes (different seeds shift the
  // diurnal noise/events; forecasts differ accordingly).
  sky::workloads::EvCountingWorkload quiet(9001);
  sky::workloads::EvCountingWorkload normal(9002);
  sky::workloads::EvCountingWorkload busy(9003);
  std::vector<sky::core::Workload*> streams = {&quiet, &normal, &busy};
  std::vector<const char*> names = {"residential", "street", "intersection"};
  // Hand-crafted per-stream forecasts: how often each stream shows easy /
  // medium / hard content.
  std::vector<std::vector<double>> forecasts = {
      {0.80, 0.15, 0.05}, {0.50, 0.30, 0.20}, {0.20, 0.35, 0.45}};

  sky::sim::ClusterSpec cluster;
  cluster.cores = 12;  // shared server
  sky::sim::CostModel cost_model(1.8);
  int fair_cores =
      sky::core::FairCoreShare(cluster.cores, streams.size());
  std::printf("shared server: %d cores -> %d per stream (fair share)\n",
              cluster.cores, fair_cores);

  // Per-stream offline phases (independent, Appendix D): one stream per
  // pool slot, and each phase's internal steps fan out on the same pool.
  sky::dag::ThreadPool pool(sky::dag::DefaultThreadCount());
  std::vector<sky::core::OfflineModel> models(streams.size());
  std::vector<sky::Status> statuses(streams.size(), sky::Status::Ok());
  sky::dag::ParallelFor(&pool, streams.size(), [&](size_t v) {
    sky::core::OfflineOptions offline;
    offline.segment_seconds = 4.0;
    offline.train_horizon = sky::Days(4);
    offline.num_categories = 3;
    offline.train_forecaster = false;  // forecasts supplied above
    offline.pool = &pool;
    sky::sim::ClusterSpec share = cluster;
    share.cores = fair_cores;
    auto model =
        sky::core::RunOfflinePhase(*streams[v], share, cost_model, offline);
    if (model.ok()) {
      models[v] = std::move(*model);
    } else {
      statuses[v] = model.status();
    }
  });
  for (const sky::Status& s : statuses) {
    if (!s.ok()) {
      std::printf("offline failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Joint plan under the shared budget.
  std::vector<sky::core::StreamPlanInput> inputs;
  for (size_t v = 0; v < streams.size(); ++v) {
    sky::core::StreamPlanInput in;
    in.categories = &models[v].categories;
    in.forecast = forecasts[v];
    for (const sky::core::ConfigProfile& p : models[v].profiles) {
      in.config_costs.push_back(p.work_core_s_per_video_s);
    }
    inputs.push_back(std::move(in));
  }
  double budget = static_cast<double>(cluster.cores) +
                  cost_model.UsdToCoreSeconds(6.0) / sky::Days(1);
  auto plans = sky::core::ComputeJointKnobPlan(inputs, budget);
  if (!plans.ok()) {
    std::printf("joint planning failed: %s\n",
                plans.status().ToString().c_str());
    return 1;
  }

  sky::TablePrinter table("Joint plan (budget " +
                          sky::TablePrinter::Fmt(budget, 1) +
                          " core-s per video-s across 3 streams)");
  table.SetHeader({"stream", "expected quality", "expected work",
                   "expensive-config share (hard content)"});
  for (size_t v = 0; v < plans->size(); ++v) {
    const sky::core::KnobPlan& plan = (*plans)[v];
    // Share of the most expensive configuration on the hardest category.
    size_t num_k = models[v].profiles.size();
    size_t hardest = 0;
    double worst = 2.0;
    for (size_t c = 0; c < 3; ++c) {
      double q = models[v].categories.CenterQuality(c, 0);
      if (q < worst) {
        worst = q;
        hardest = c;
      }
    }
    double expensive_share = plan.alpha.At(hardest, num_k - 1);
    table.AddRow({names[v], sky::TablePrinter::Pct(plan.expected_quality),
                  sky::TablePrinter::Fmt(plan.expected_work, 2),
                  sky::TablePrinter::Pct(expensive_share)});
  }
  table.Print(std::cout);
  std::printf("\nCredits flow to the streams (and content categories) where "
              "expensive configurations buy the most quality; normalization "
              "still holds per stream and category (Eq. 9).\n");

  // Ingest six hours of all three cameras concurrently: each stream's
  // engine is an independent simulation, so they share the pool one stream
  // per slot.
  std::vector<sky::core::StreamEngineJob> jobs;
  for (size_t v = 0; v < streams.size(); ++v) {
    sky::core::StreamEngineJob job;
    job.workload = streams[v];
    job.model = &models[v];
    job.cluster = cluster;
    job.cluster.cores = fair_cores;
    job.cost_model = &cost_model;
    job.options.duration = sky::Hours(6);
    job.options.plan_interval = sky::Hours(6);
    job.options.cloud_budget_usd_per_interval = 1.0;
    job.start_time = sky::Days(4);
    jobs.push_back(job);
  }
  std::vector<sky::Result<sky::core::EngineResult>> runs =
      sky::core::RunStreamEngines(jobs, &pool);
  std::printf("\nSix hours of concurrent ingestion (%zu worker threads):\n",
              pool.num_threads());
  for (size_t v = 0; v < runs.size(); ++v) {
    if (!runs[v].ok()) {
      std::printf("engine failed: %s\n", runs[v].status().ToString().c_str());
      return 1;
    }
    std::printf("  %-12s mean quality %s over %zu segments, %zu switches\n",
                names[v],
                sky::TablePrinter::Pct(runs[v]->mean_quality).c_str(),
                runs[v]->segments, runs[v]->switch_count);
  }
  return 0;
}
