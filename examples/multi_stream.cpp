// Multi-stream deployment (paper Appendix D): several cameras share one
// server and one cloud-credit budget. A core::StreamSet multiplexes the
// three ingestion sessions on one shared clock and — in joint mode — runs
// the joint knob planner (Eqs. 7-9) live at every lockstep plan boundary,
// so credits flow to the streams where expensive configurations matter
// most. Independent mode keeps the even-split baseline: each stream plans
// alone on its own share (exactly what running the engines separately, or
// core::RunStreamEngines, would do).
//
// Three cameras run the EV-counting job: a quiet residential camera, a
// normal street, and a busy intersection. Each stream keeps its own content
// categories and forecaster; only the planning program is joint.

#include <cstdio>
#include <iostream>

#include "core/multi_stream.h"
#include "core/offline.h"
#include "dag/thread_pool.h"
#include "util/table.h"
#include "workloads/ev_counting.h"

int main() {
  std::printf(
      "Jointly-planned multi-stream ingestion, three cameras (Appendix D)\n");

  // Three streams with different content mixes (different seeds shift the
  // diurnal noise/events, so the hard-content share differs per camera).
  sky::workloads::EvCountingWorkload quiet(9001);
  sky::workloads::EvCountingWorkload normal(9002);
  sky::workloads::EvCountingWorkload busy(9003);
  std::vector<sky::core::Workload*> streams = {&quiet, &normal, &busy};
  std::vector<const char*> names = {"residential", "street", "intersection"};

  sky::sim::ClusterSpec cluster;
  cluster.cores = 6;  // shared server, deliberately tight (2 cores/stream)
  sky::sim::CostModel cost_model(1.8);
  int fair_cores = sky::core::FairCoreShare(cluster.cores, streams.size());
  std::printf("shared server: %d cores -> %d per stream (fair share)\n",
              cluster.cores, fair_cores);

  // Per-stream offline phases (independent, Appendix D): one stream per
  // pool slot, and each phase's internal steps fan out on the same pool.
  sky::dag::ThreadPool pool(sky::dag::DefaultThreadCount());
  std::vector<sky::core::OfflineModel> models(streams.size());
  std::vector<sky::Status> statuses(streams.size(), sky::Status::Ok());
  sky::dag::ParallelFor(&pool, streams.size(), [&](size_t v) {
    sky::core::OfflineOptions offline;
    offline.segment_seconds = 4.0;
    offline.train_horizon = sky::Days(4);
    offline.num_categories = 3;
    offline.forecaster.input_span = sky::Days(1);
    offline.forecaster.planned_interval = sky::Hours(6);
    offline.pool = &pool;
    sky::sim::ClusterSpec share = cluster;
    share.cores = fair_cores;
    auto model =
        sky::core::RunOfflinePhase(*streams[v], share, cost_model, offline);
    if (model.ok()) {
      models[v] = std::move(*model);
    } else {
      statuses[v] = model.status();
    }
  });
  for (const sky::Status& s : statuses) {
    if (!s.ok()) {
      std::printf("offline failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // One ingestion job per camera: six hours of live video, a 6-hour plan
  // interval, fifty cents of cloud credits per stream and interval. The
  // same jobs drive both planning modes.
  std::vector<sky::core::StreamEngineJob> jobs;
  for (size_t v = 0; v < streams.size(); ++v) {
    sky::core::StreamEngineJob job;
    job.workload = streams[v];
    job.model = &models[v];
    job.cluster = cluster;
    job.cluster.cores = fair_cores;
    job.cost_model = &cost_model;
    job.options.duration = sky::Hours(6);
    job.options.plan_interval = sky::Hours(6);
    job.options.cloud_budget_usd_per_interval = 0.5;
    job.start_time = sky::Days(4);
    jobs.push_back(job);
  }

  // Joint mode: the StreamSet intercepts the lockstep plan boundary and
  // solves ONE program across all streams under the pooled budget.
  sky::core::StreamSetOptions joint_opts;
  joint_opts.planning = sky::core::MultiStreamPlanning::kJoint;
  auto joint = sky::core::StreamSet::Create(jobs, joint_opts);
  if (!joint.ok()) {
    std::printf("joint set failed: %s\n", joint.status().ToString().c_str());
    return 1;
  }

  // Step the set incrementally for one hour of the shared clock, then look
  // inside the live sessions: the jointly-computed plans are already
  // steering each stream's switcher.
  if (!joint->RunUntilElapsed(sky::Hours(1)).ok()) return 1;
  sky::TablePrinter live("Joint plans after 1 h of shared-clock stepping");
  live.SetHeader({"stream", "plan expected quality", "plan expected work",
                  "partial mean quality"});
  for (size_t v = 0; v < joint->num_streams(); ++v) {
    const sky::core::KnobPlan* plan = joint->engine(v)->current_plan();
    live.AddRow({names[v], sky::TablePrinter::Pct(plan->expected_quality),
                 sky::TablePrinter::Fmt(plan->expected_work, 2),
                 sky::TablePrinter::Pct(
                     joint->engine(v)->partial_result().mean_quality)});
  }
  live.Print(std::cout);

  // Finish the day and run the even-split baseline on the same jobs.
  if (!joint->RunToCompletion(&pool).ok()) return 1;
  sky::core::StreamSetOptions indep_opts;
  indep_opts.planning = sky::core::MultiStreamPlanning::kIndependent;
  auto indep = sky::core::StreamSet::Create(jobs, indep_opts);
  if (!indep.ok() || !indep->RunToCompletion(&pool).ok()) {
    std::printf("independent set failed\n");
    return 1;
  }

  auto joint_results = joint->Results();
  auto indep_results = indep->Results();
  sky::TablePrinter table(
      "Six hours of ingestion: joint vs independent planning");
  table.SetHeader({"stream", "joint quality", "independent quality",
                   "joint cloud $", "independent cloud $"});
  double joint_q = 0.0, indep_q = 0.0;
  for (size_t v = 0; v < jobs.size(); ++v) {
    if (!joint_results[v].ok() || !indep_results[v].ok()) {
      std::printf("stream %zu failed\n", v);
      return 1;
    }
    joint_q += joint_results[v]->mean_quality;
    indep_q += indep_results[v]->mean_quality;
    table.AddRow(
        {names[v], sky::TablePrinter::Pct(joint_results[v]->mean_quality),
         sky::TablePrinter::Pct(indep_results[v]->mean_quality),
         sky::TablePrinter::Fmt(joint_results[v]->cloud_usd, 2),
         sky::TablePrinter::Fmt(indep_results[v]->cloud_usd, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nmean quality across streams: joint %s vs independent %s\n"
      "(the joint program re-divides the pooled budget at every lockstep\n"
      "boundary to maximize the forecast-weighted expected quality SUM —\n"
      "note the cloud credits concentrating on the camera whose hard\n"
      "content gains the most; normalization still holds per stream and\n"
      "category, Eq. 9)\n",
      sky::TablePrinter::Pct(joint_q / jobs.size()).c_str(),
      sky::TablePrinter::Pct(indep_q / jobs.size()).c_str());
  return 0;
}
