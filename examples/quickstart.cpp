// Quickstart: the electric-vehicle counting example of the paper's
// introduction and Appendix F.
//
// A city wants to count electric vehicles passing each traffic camera. The
// V-ETL job detects cars (YOLO UDF), tracks them so none is double-counted
// (KCF UDF), and loads the counts into a queryable table. Skyscraper tunes
// the job's knobs (detector interval, model size) to the streamed content so
// that the job runs within a fixed hardware budget at maximum quality.
//
//   ./quickstart
//
// Walks through: (1) the raw video substrate — synthetic frames, the codec,
// and actually executing a UDF DAG on a thread pool; (2) provisioning
// Skyscraper, running the offline fit, and ingesting a day of video.

#include <cstdio>

#include "api/skyscraper.h"
#include "dag/executor.h"
#include "video/codec.h"
#include "video/scene.h"
#include "workloads/ev_counting.h"

namespace {

// ---------------------------------------------------------------------------
// Part 1: the Extract step on real (synthetic) frames.
// ---------------------------------------------------------------------------

void ExtractDemo() {
  std::printf("-- Part 1: Extract --\n");
  sky::video::SceneOptions scene_opts;
  scene_opts.seed = 7;
  sky::video::SceneGenerator scene(scene_opts);

  // Five seconds of video: encode, decode, and count electric vehicles from
  // the ground truth (a stand-in for the YOLO detector's output).
  size_t encoded_bytes = 0;
  int evs_seen = 0;
  for (int i = 0; i < 150; ++i) {
    sky::video::Frame frame = scene.NextFrame(/*density=*/0.6);
    std::vector<uint8_t> packet = sky::video::BlockRleCodec::Encode(frame);
    encoded_bytes += packet.size();
    auto decoded = sky::video::BlockRleCodec::Decode(packet);
    if (!decoded.ok()) {
      std::printf("decode failed: %s\n", decoded.status().ToString().c_str());
      return;
    }
    for (const sky::video::SceneObject& obj : frame.objects) {
      if (obj.class_id == 2) ++evs_seen;  // green license plate
    }
  }
  std::printf("  150 frames encoded to %zu bytes; %d EV sightings\n",
              encoded_bytes, evs_seen);

  // Execute one segment's UDF DAG for real on a thread pool: decode feeds a
  // detector which feeds a tracker (synthetic compute kernels).
  sky::dag::TaskGraph graph;
  auto make_node = [](const char* name, double millis) {
    sky::dag::TaskNode node;
    node.name = name;
    node.work = [millis] { sky::dag::BusyWorkMillis(millis); };
    return node;
  };
  size_t decode = graph.AddNode(make_node("decode", 5));
  size_t yolo_a = graph.AddNode(make_node("yolo#0", 40));
  size_t yolo_b = graph.AddNode(make_node("yolo#1", 40));
  size_t kcf = graph.AddNode(make_node("kcf", 10));
  (void)graph.AddEdge(decode, yolo_a);
  (void)graph.AddEdge(decode, yolo_b);
  (void)graph.AddEdge(yolo_a, kcf);
  sky::dag::ThreadPool pool(4);
  auto report = sky::dag::ExecuteDag(graph, &pool);
  if (report.ok()) {
    std::printf("  UDF DAG executed in %.0f ms on 4 workers\n",
                report->makespan_s * 1e3);
  }
}

// ---------------------------------------------------------------------------
// Part 2: the Transform step under Skyscraper — as a live, steppable
// streaming session (pause, inspect, checkpoint, resume), with the batch
// Ingest call shown as the one-line convenience wrapper it is.
// ---------------------------------------------------------------------------

void IngestDemo() {
  std::printf("-- Part 2: Transform with Skyscraper --\n");

  // The user-provided job: UDFs, knobs (det_interval, yolo_size) and the
  // person*seconds-style quality metric live in the workload object.
  sky::workloads::EvCountingWorkload job;

  sky::api::Skyscraper sky(&job);
  sky::api::Resources resources;
  resources.cores = 4;                          // cheap always-on server
  resources.buffer_bytes = 4ull << 30;          // 4 GB video buffer (Fig. 3)
  resources.cloud_budget_usd_per_interval = 1;  // cloud credits per day
  sky.SetResources(resources);

  // Offline phase (§3): filter knobs and placements, build content
  // categories, train the forecasting model on two weeks of recorded video.
  sky::core::OfflineOptions fit;
  fit.segment_seconds = 4.0;
  fit.train_horizon = sky::Days(6);
  fit.num_categories = 3;
  fit.forecaster.input_span = sky::Days(1);
  fit.forecaster.planned_interval = sky::Days(1);
  sky::Status fitted = sky.Fit(fit);
  if (!fitted.ok()) {
    std::printf("fit failed: %s\n", fitted.ToString().c_str());
    return;
  }
  const sky::core::OfflineModel& model = **sky.model();
  std::printf("  offline fit: %zu configurations kept, %zu categories\n",
              model.configs.size(), model.categories.NumCategories());

  // Online phase (§4), as a streaming session: StartIngest returns a
  // steppable handle instead of blocking for the whole day.
  sky::core::EngineOptions run;
  run.duration = sky::Days(1);
  run.plan_interval = sky::Days(1);
  auto session = sky.StartIngest(sky::Days(6), run);
  if (!session.ok()) {
    std::printf("ingest failed: %s\n", session.status().ToString().c_str());
    return;
  }

  // Ingest six hours, then pause and look inside the live run: the plan
  // currently steering the switcher, the partial result, the buffer.
  if (!session->RunUntil(sky::Days(6) + sky::Hours(6)).ok()) return;
  const sky::core::EngineResult& progress = session->Progress();
  std::printf(
      "  after 6 h: %zu segments  mean quality %.1f%%  buffer %.2f GB  "
      "plan expects %.1f%% at %.2f core-s/s\n",
      progress.segments, 100 * progress.mean_quality,
      session->BufferOccupancyBytes() / 1e9,
      100 * session->CurrentPlan()->expected_quality,
      session->CurrentPlan()->expected_work);

  // Checkpoint the live session, wander off, and rewind: the restored run
  // continues exactly as if it had never stopped.
  auto noon = session->Checkpoint();
  if (!noon.ok()) return;
  (void)session->RunUntil(sky::Days(6) + sky::Hours(9));
  (void)session->Restore(*noon);

  // Finish the day incrementally.
  auto result = session->RunToCompletion();
  if (!result.ok()) {
    std::printf("ingest failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf(
      "  ingested %zu segments  mean quality %.1f%%  knob switches %zu\n",
      result->segments, 100 * result->mean_quality, result->switch_count);
  std::printf(
      "  buffer high-water %.2f GB  cloud spend $%.2f  overflows %zu\n",
      result->buffer_high_water_bytes / 1e9, result->cloud_usd,
      result->overflow_events);

  // The batch call is just the convenience wrapper over the same session —
  // same engine, bitwise-identical result.
  auto batch = sky.Ingest(sky::Days(6), run);
  std::printf("  batch Ingest() identical to the stepped session: %s\n",
              batch.ok() && sky::core::EngineResultsIdentical(*batch, *result)
                  ? "yes"
                  : "NO");
}

}  // namespace

int main() {
  std::printf("Skyscraper quickstart: EV counting (paper §1 / Appendix F)\n");
  ExtractDemo();
  IngestDemo();
  std::printf("done.\n");
  return 0;
}
